package metrics

import (
	"fmt"
	"sort"

	"laperm/internal/gpu"
)

// Series accumulates a set of scalar observations and answers summary
// queries exactly (observations are retained).
type Series struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Series) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the observation count.
func (s *Series) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 { return Mean(s.xs) }

// Max returns the maximum observation (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for i, x := range s.xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using the
// nearest-rank method; 0 for an empty series.
func (s *Series) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	rank := int(p/100*float64(len(s.xs))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.xs) {
		rank = len(s.xs) - 1
	}
	return s.xs[rank]
}

// String summarises the series.
func (s *Series) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p90=%.1f max=%.1f",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(90), s.Max())
}

// ChildLatency breaks down the dynamic-launch pipeline of a finished run:
// the launch latency itself, the queueing delay between arrival and first
// dispatch (the component the LaPerm scheduler attacks, Section III-B), and
// the execution span.
type ChildLatency struct {
	// LaunchToArrive is the device-launch latency (cycles).
	LaunchToArrive Series
	// ArriveToDispatch is the scheduler queueing delay (cycles).
	ArriveToDispatch Series
	// DispatchToComplete is the execution span of the child grid.
	DispatchToComplete Series
}

// AnalyzeChildLatency computes the breakdown over every completed dynamic
// kernel instance of a run (host kernels are excluded).
func AnalyzeChildLatency(kernels []*gpu.KernelInstance) *ChildLatency {
	cl := &ChildLatency{}
	for _, ki := range kernels {
		if ki.Parent == nil || !ki.Complete() {
			continue
		}
		cl.LaunchToArrive.Add(float64(ki.ArriveCycle - ki.LaunchCycle))
		cl.ArriveToDispatch.Add(float64(ki.FirstDispatchCycle - ki.ArriveCycle))
		cl.DispatchToComplete.Add(float64(ki.CompleteCycle - ki.FirstDispatchCycle))
	}
	return cl
}

// String summarises the breakdown.
func (c *ChildLatency) String() string {
	return fmt.Sprintf("launch->arrive: %v\narrive->dispatch: %v\ndispatch->complete: %v",
		&c.LaunchToArrive, &c.ArriveToDispatch, &c.DispatchToComplete)
}
