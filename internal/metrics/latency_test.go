package metrics

import (
	"math"
	"strings"
	"testing"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.N() != 0 || s.Mean() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series should answer zeros")
	}
	for _, x := range []float64{5, 1, 9, 3, 7} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %f", s.Mean())
	}
	if s.Max() != 9 {
		t.Errorf("Max = %f", s.Max())
	}
	if got := s.Percentile(50); got != 5 {
		t.Errorf("P50 = %f, want 5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %f, want 1", got)
	}
	if got := s.Percentile(100); got != 9 {
		t.Errorf("P100 = %f, want 9", got)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSeriesAddAfterPercentile(t *testing.T) {
	var s Series
	s.Add(2)
	_ = s.Percentile(50)
	s.Add(1) // must re-sort lazily
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 after late Add = %f, want 1", got)
	}
}

func TestSeriesPercentileNegativeValues(t *testing.T) {
	var s Series
	s.Add(-3)
	s.Add(-1)
	if got := s.Max(); got != -1 {
		t.Errorf("Max of negatives = %f, want -1", got)
	}
}

func TestAnalyzeChildLatencyEndToEnd(t *testing.T) {
	cfg := config.SmallTest()
	cfg.DTBLLaunchLatency = 40
	child := isa.NewKernel("c").Add(isa.NewTB(32).ComputeN(2, 10).Build()).Build()
	kb := isa.NewKernel("p")
	for i := 0; i < 6; i++ {
		kb.Add(isa.NewTB(32).Compute(2).Launch(0, child).Compute(50).Build())
	}
	sim := gpu.MustNew(gpu.Options{Config: &cfg, Scheduler: core.NewRoundRobin(), Model: gpu.DTBL})
	if err := sim.LaunchHost(kb.Build()); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	cl := AnalyzeChildLatency(sim.Kernels())
	if cl.LaunchToArrive.N() != 6 {
		t.Fatalf("observed %d children, want 6", cl.LaunchToArrive.N())
	}
	// Launch latency is exactly the configured constant.
	if got := cl.LaunchToArrive.Mean(); math.Abs(got-40) > 1e-9 {
		t.Errorf("launch latency mean = %f, want 40", got)
	}
	// Execution spans ten 2-cycle computes.
	if got := cl.DispatchToComplete.Mean(); got < 10 {
		t.Errorf("execution span mean = %f, implausibly small", got)
	}
	if cl.ArriveToDispatch.Percentile(50) < 0 {
		t.Error("negative queueing delay")
	}
	if !strings.Contains(cl.String(), "arrive->dispatch") {
		t.Errorf("String = %q", cl.String())
	}
}

func TestAnalyzeChildLatencySkipsHostKernels(t *testing.T) {
	cfg := config.SmallTest()
	k := isa.NewKernel("plain").Add(isa.NewTB(32).Compute(1).Build()).Build()
	sim := gpu.MustNew(gpu.Options{Config: &cfg, Scheduler: core.NewRoundRobin()})
	if err := sim.LaunchHost(k); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	cl := AnalyzeChildLatency(sim.Kernels())
	if cl.LaunchToArrive.N() != 0 {
		t.Error("host kernel counted as dynamic child")
	}
}

// TestQueueingDelayShrinksUnderLaPerm ties the latency breakdown to the
// paper's core claim: under Adaptive-Bind the arrive->dispatch delay is far
// below the RR baseline's on a contended machine.
func TestQueueingDelayShrinksUnderLaPerm(t *testing.T) {
	build := func() *isa.Kernel {
		child := isa.NewKernel("c").Add(isa.NewTB(64).ComputeN(4, 20).Build()).Build()
		kb := isa.NewKernel("p")
		for i := 0; i < 64; i++ {
			kb.Add(isa.NewTB(64).Compute(2).Launch(0, child).ComputeN(4, 20).Build())
		}
		return kb.Build()
	}
	delay := func(mk func(cfg *config.GPU) gpu.TBScheduler) float64 {
		cfg := config.SmallTest()
		sim := gpu.MustNew(gpu.Options{Config: &cfg, Scheduler: mk(&cfg), Model: gpu.DTBL})
		if err := sim.LaunchHost(build()); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return AnalyzeChildLatency(sim.Kernels()).ArriveToDispatch.Mean()
	}
	rr := delay(func(cfg *config.GPU) gpu.TBScheduler { return core.NewRoundRobin() })
	ab := delay(func(cfg *config.GPU) gpu.TBScheduler {
		return core.NewAdaptiveBind(cfg.NumSMX, cfg.MaxPriorityLevels)
	})
	if ab >= rr {
		t.Errorf("queueing delay: adaptive %f >= rr %f", ab, rr)
	}
}
