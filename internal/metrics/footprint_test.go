package metrics

import (
	"math"
	"strings"
	"testing"

	"laperm/internal/isa"
	"laperm/internal/kernels"
)

// loadTB builds a 32-thread TB whose threads each load one word of every
// listed 128-byte block.
func loadTB(blocks ...uint64) *isa.TB {
	b := isa.NewTB(32)
	for _, blk := range blocks {
		base := blk * 128
		b.Load(func(tid int) uint64 { return base + uint64(tid)*4 })
	}
	return b.Build()
}

func TestAnalyzeFootprintHandCheck(t *testing.T) {
	// Parent reads blocks {0,1,2,3}. Child A reads {2,3,10} (shares 2),
	// child B reads {3,11} (shares 1). Union of children = {2,3,10,11}
	// so pc/c = 2 shared blocks... parent∩{2,3,10,11} = {2,3} -> 2/4.
	childA := isa.NewKernel("a").Add(loadTB(2, 3, 10)).Build()
	childB := isa.NewKernel("b").Add(loadTB(3, 11)).Build()
	parentTB := loadTB(0, 1, 2, 3)
	parentTB.Launches = []*isa.Kernel{childA, childB}
	// Attach launch instructions for validity.
	parentTB.Warps[0] = append(parentTB.Warps[0],
		isa.Inst{Kind: isa.OpLaunch, ActiveLanes: 1, Launch: 0},
		isa.Inst{Kind: isa.OpLaunch, ActiveLanes: 1, Launch: 1},
	)
	k := isa.NewKernel("hand").Add(parentTB).Build()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}

	st := AnalyzeFootprint("hand", k)
	if st.DirectParents != 1 || st.ChildTBs != 2 {
		t.Fatalf("counts = %+v", st)
	}
	if want := 2.0 / 4.0; math.Abs(st.ParentChild-want) > 1e-9 {
		t.Errorf("ParentChild = %f, want %f", st.ParentChild, want)
	}
	// Child-sibling: A vs {3,11}: shares {3} -> 1/2. B vs {2,3,10}:
	// shares {3} -> 1/3. Mean = (0.5 + 0.3333)/2.
	if want := (0.5 + 1.0/3.0) / 2; math.Abs(st.ChildSibling-want) > 1e-9 {
		t.Errorf("ChildSibling = %f, want %f", st.ChildSibling, want)
	}
}

func TestAnalyzeFootprintParentParent(t *testing.T) {
	// Two parents sharing exactly one block. P0={0,1}, P1={1,2}.
	// For P0: others = {1,2}, shared = {1} -> 1/2; same for P1.
	k := isa.NewKernel("pp").Add(loadTB(0, 1), loadTB(1, 2)).Build()
	st := AnalyzeFootprint("pp", k)
	if want := 0.5; math.Abs(st.ParentParent-want) > 1e-9 {
		t.Errorf("ParentParent = %f, want %f", st.ParentParent, want)
	}
}

func TestAnalyzeFootprintNoChildren(t *testing.T) {
	k := isa.NewKernel("plain").Add(loadTB(0), loadTB(1)).Build()
	st := AnalyzeFootprint("plain", k)
	if st.ParentChild != 0 || st.ChildSibling != 0 || st.DirectParents != 0 {
		t.Errorf("stats for launch-free kernel = %+v", st)
	}
}

func TestAnalyzeFootprintSingleChildNoSiblingRatio(t *testing.T) {
	child := isa.NewKernel("c").Add(loadTB(5)).Build()
	p := loadTB(5, 6)
	p.Launches = []*isa.Kernel{child}
	p.Warps[0] = append(p.Warps[0], isa.Inst{Kind: isa.OpLaunch, ActiveLanes: 1})
	k := isa.NewKernel("one").Add(p).Build()
	st := AnalyzeFootprint("one", k)
	if st.ChildSibling != 0 {
		t.Errorf("ChildSibling = %f for an only child", st.ChildSibling)
	}
	if st.ParentChild != 1.0 {
		t.Errorf("ParentChild = %f, want 1 (child subset of parent)", st.ParentChild)
	}
}

func TestStringFormat(t *testing.T) {
	st := FootprintStats{Workload: "x", ParentChild: 0.384, ChildSibling: 0.305}
	s := st.String()
	if !strings.Contains(s, "38.4%") || !strings.Contains(s, "30.5%") {
		t.Errorf("String() = %q", s)
	}
}

// TestFig2Shape verifies the headline Figure 2 properties on the real
// workloads: meaningful average parent-child sharing, amr and join at the
// bottom of the child-sibling range, and graph inputs ordered by
// connectivity locality (citation/cage15 above graph5).
func TestFig2Shape(t *testing.T) {
	stats := make(map[string]FootprintStats)
	var pcAll []float64
	for _, w := range kernels.All() {
		// The input-locality ordering needs realistically sized
		// graphs, so this test runs the real experiment scale.
		st := AnalyzeFootprint(w.Name, w.Build(kernels.ScaleSmall))
		stats[w.Name] = st
		pcAll = append(pcAll, st.ParentChild)
	}

	if avg := Mean(pcAll); avg < 0.15 || avg > 0.70 {
		t.Errorf("average parent-child ratio %.3f outside plausible range of the paper's 38.4%%", avg)
	}

	// amr and join: lowest child-sibling sharing.
	for _, low := range []string{"amr", "join-uniform", "join-gaussian"} {
		if cs := stats[low].ChildSibling; cs > 0.10 {
			t.Errorf("%s child-sibling = %.3f, want near zero", low, cs)
		}
	}
	for _, name := range []string{"bfs-citation", "bfs-cage15", "sssp-citation", "regx-darpa", "bht"} {
		if cs := stats[name].ChildSibling; cs < stats["amr"].ChildSibling {
			t.Errorf("%s child-sibling %.3f below amr's %.3f", name, cs, stats["amr"].ChildSibling)
		}
	}

	// Input dependence: concentrated graphs beat scattered graph5.
	for _, app := range []string{"bfs", "sssp", "clr"} {
		cite := stats[app+"-citation"].ChildSibling
		cage := stats[app+"-cage15"].ChildSibling
		g5 := stats[app+"-graph5"].ChildSibling
		if !(cite > g5) {
			t.Errorf("%s: citation child-sibling %.3f should exceed graph5 %.3f", app, cite, g5)
		}
		if !(cage > g5) {
			t.Errorf("%s: cage15 child-sibling %.3f should exceed graph5 %.3f", app, cage, g5)
		}
	}

	// Parent-parent reuse is well below parent-child on average (the
	// paper reports 9.3% vs 38.4%).
	var ppAll []float64
	for _, st := range stats {
		ppAll = append(ppAll, st.ParentParent)
	}
	if Mean(ppAll) >= Mean(pcAll) {
		t.Errorf("parent-parent mean %.3f not below parent-child mean %.3f", Mean(ppAll), Mean(pcAll))
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %f", m)
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Errorf("GeoMean = %f", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("GeoMean of non-positive did not panic")
			}
		}()
		GeoMean([]float64{1, 0})
	}()
}
