package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

func runTraced(t *testing.T) (*Recorder, *gpu.Simulator) {
	t.Helper()
	cfg := config.SmallTest()
	cfg.DTBLLaunchLatency = 25
	rec := NewRecorder()
	sim := gpu.MustNew(gpu.Options{
		Config:        &cfg,
		Scheduler:     core.NewRoundRobin(),
		Model:         gpu.DTBL,
		TraceDispatch: rec.DispatchHook(),
	})
	child := isa.NewKernel("child").Add(isa.NewTB(32).Compute(5).Build()).Build()
	kb := isa.NewKernel("host")
	for i := 0; i < 4; i++ {
		kb.Add(isa.NewTB(32).Compute(2).Launch(0, child).Compute(10).Build())
	}
	if err := sim.LaunchHost(kb.Build()); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	rec.FinishRun(sim)
	return rec, sim
}

func TestRecorderCapturesFullLifecycle(t *testing.T) {
	rec, sim := runTraced(t)
	// 5 kernels (host + 4 children): launched, arrived, completed each,
	// plus 8 TB dispatches (4 host TBs + 4 child TBs).
	if want := 5*3 + 8; rec.Len() != want {
		t.Fatalf("events = %d, want %d", rec.Len(), want)
	}
	sum := rec.Summary()
	if sum["host"][TBDispatched] != 4 || sum["child"][TBDispatched] != 4 {
		t.Errorf("summary = %v", sum)
	}
	if sum["child"][KernelCompleted] != 4 {
		t.Errorf("child completions = %d", sum["child"][KernelCompleted])
	}
	_ = sim
}

func TestEventsCycleOrderedAndConsistent(t *testing.T) {
	rec, _ := runTraced(t)
	var last uint64
	perKernel := make(map[int]map[Kind]uint64)
	for _, e := range rec.Events() {
		if e.Cycle < last {
			t.Fatalf("events out of order at cycle %d", e.Cycle)
		}
		last = e.Cycle
		if perKernel[e.Kernel] == nil {
			perKernel[e.Kernel] = make(map[Kind]uint64)
		}
		perKernel[e.Kernel][e.Kind] = e.Cycle
	}
	for id, ks := range perKernel {
		if ks[KernelArrived] < ks[KernelLaunched] {
			t.Errorf("kernel %d arrived before launch", id)
		}
		if ks[KernelCompleted] < ks[KernelArrived] {
			t.Errorf("kernel %d completed before arrival", id)
		}
	}
}

func TestParentLinks(t *testing.T) {
	rec, _ := runTraced(t)
	for _, e := range rec.Events() {
		if e.Name == "host" && e.Parent != -1 {
			t.Errorf("host kernel has parent %d", e.Parent)
		}
		if e.Name == "child" && e.Parent == -1 {
			t.Error("child kernel missing parent link")
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	rec, _ := runTraced(t)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if e.Kind == "" || e.Name == "" {
			t.Fatalf("line %d: incomplete event %+v", n, e)
		}
		n++
	}
	if n != rec.Len() {
		t.Errorf("JSONL lines = %d, want %d", n, rec.Len())
	}
}

func TestDispatchEventFields(t *testing.T) {
	rec, _ := runTraced(t)
	for _, e := range rec.Events() {
		switch e.Kind {
		case TBDispatched:
			if e.SMX < 0 || e.TB < 0 {
				t.Errorf("dispatch event missing placement: %+v", e)
			}
		default:
			if e.SMX != -1 || e.TB != -1 {
				t.Errorf("lifecycle event carries placement: %+v", e)
			}
		}
	}
}

// runBackpressured runs a DTBL workload against a tiny aggregation buffer so
// the recorder sees launch backpressure through QueueHook.
func runBackpressured(t *testing.T, policy config.OverflowPolicy) (*Recorder, *gpu.Result) {
	t.Helper()
	cfg := config.SmallTest()
	cfg.DTBLAggBufferEntries = 1
	cfg.DTBLOverflowPolicy = policy
	rec := NewRecorder()
	sim := gpu.MustNew(gpu.Options{
		Config:     &cfg,
		Scheduler:  core.NewRoundRobin(),
		Model:      gpu.DTBL,
		TraceQueue: rec.QueueHook(),
	})
	child := isa.NewKernel("bp-child").Add(isa.NewTB(32).Compute(4).Build()).Build()
	kb := isa.NewKernel("bp-host")
	for i := 0; i < 2; i++ {
		b := isa.NewTB(32).Compute(2)
		for c := 0; c < 4; c++ {
			b.Launch(c, child).Compute(2)
		}
		kb.Add(b.Build())
	}
	if err := sim.LaunchHost(kb.Build()); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	rec.FinishRun(sim)
	return rec, res
}

func TestQueueHookRecordsStallEpisodes(t *testing.T) {
	rec, res := runBackpressured(t, config.StallWarp)
	var stalls int
	for _, e := range rec.Events() {
		if e.Kind != LaunchStalled {
			continue
		}
		stalls++
		if e.Kernel != -1 {
			t.Errorf("stall event carries kernel ID %d; the launch has no instance yet", e.Kernel)
		}
		if e.Queue != "agg" {
			t.Errorf("stall queue = %q, want agg", e.Queue)
		}
		if e.Parent < 0 {
			t.Errorf("stall event missing launching parent: %+v", e)
		}
		if e.Name != "bp-child" {
			t.Errorf("stall names %q, want the child grid", e.Name)
		}
	}
	if stalls == 0 {
		t.Fatal("no LaunchStalled events recorded against a 1-entry buffer")
	}
	if int64(stalls) != res.LaunchStallEpisodes {
		t.Errorf("recorded %d stall events, result counts %d episodes", stalls, res.LaunchStallEpisodes)
	}
}

func TestQueueHookRecordsOverflows(t *testing.T) {
	rec, res := runBackpressured(t, config.DropToKMU)
	var overflows int
	for _, e := range rec.Events() {
		if e.Kind != QueueOverflow {
			continue
		}
		overflows++
		if e.Queue != "agg" {
			t.Errorf("overflow queue = %q, want agg", e.Queue)
		}
	}
	if overflows == 0 {
		t.Fatal("no QueueOverflow events recorded under DropToKMU")
	}
	if int64(overflows) != res.QueueOverflows {
		t.Errorf("recorded %d overflow events, result counts %d", overflows, res.QueueOverflows)
	}
}

func TestQueueEventsRoundTripJSONL(t *testing.T) {
	rec, _ := runBackpressured(t, config.StallWarp)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sawQueue := false
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		switch e.Kind {
		case LaunchStalled, QueueOverflow:
			sawQueue = true
			if e.Queue == "" {
				t.Fatalf("backpressure event lost its queue field: %s", sc.Text())
			}
		default:
			if bytes.Contains(sc.Bytes(), []byte(`"queue"`)) {
				t.Fatalf("non-backpressure event serialises a queue field: %s", sc.Text())
			}
		}
	}
	if !sawQueue {
		t.Fatal("no backpressure events in the JSONL stream")
	}
}
