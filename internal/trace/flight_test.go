package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"laperm/internal/telemetry"
)

func TestWriteFlightPerfetto(t *testing.T) {
	f := telemetry.NewFlight("abc")
	begin := f.Begin()
	f.Add("job", "queue", begin, begin.Add(2*time.Millisecond))
	f.Add("job", "run", begin.Add(2*time.Millisecond), begin.Add(10*time.Millisecond))
	f.Add("engine", "simulate", begin.Add(3*time.Millisecond), begin.Add(9*time.Millisecond))
	f.Instant("job", "retry", map[string]string{"kind": "transient"})
	f.Add("job", "open", begin.Add(4*time.Millisecond), time.Time{}) // still open

	var buf bytes.Buffer
	if err := WriteFlightPerfetto(&buf, f); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	byName := map[string]int{}
	pids := map[string]int{}
	var retryArgs map[string]any
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
		switch ev.Ph {
		case "M":
			// process_name metadata: args.name is the track.
			if n, ok := ev.Args["name"].(string); ok {
				pids[n] = ev.Pid
			}
		case "i":
			retryArgs = ev.Args
		}
	}
	// Tracks sorted: "engine" is pid 1, "job" pid 2.
	if pids["engine"] != 1 || pids["job"] != 2 {
		t.Fatalf("track pids = %v, want engine=1 job=2", pids)
	}
	queue := doc.TraceEvents[byName["queue"]]
	if queue.Ph != "X" || queue.Ts != 0 || queue.Dur != 2000 {
		t.Fatalf("queue slice wrong: %+v", queue)
	}
	run := doc.TraceEvents[byName["run"]]
	if run.Ts != 2000 || run.Dur != 8000 {
		t.Fatalf("run slice wrong: %+v", run)
	}
	sim := doc.TraceEvents[byName["simulate"]]
	if sim.Pid != pids["engine"] {
		t.Fatalf("simulate on pid %d, want engine pid %d", sim.Pid, pids["engine"])
	}
	if retryArgs["kind"] != "transient" {
		t.Fatalf("instant args = %v", retryArgs)
	}
	// The open span must be closed at the horizon (latest time = run's end
	// or the instant), never zero-length.
	open := doc.TraceEvents[byName["open"]]
	if open.Dur == 0 {
		t.Fatalf("open span rendered zero-length: %+v", open)
	}
}

func TestWriteFlightPerfettoEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFlightPerfetto(&buf, telemetry.NewFlight("empty")); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty flight output invalid: %v", err)
	}
}
