// Package trace records structured simulation events (kernel lifecycle and
// thread-block placement) and exports them as JSON Lines for debugging and
// visualisation. The recorder attaches to the engine through the gpu
// package's dispatch hook plus kernel-instance timestamps, so it costs
// nothing when unused.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"laperm/internal/gpu"
)

// Kind labels an event.
type Kind string

// Event kinds, in lifecycle order.
const (
	// KernelLaunched: a device-side launch instruction executed (or a
	// host kernel was submitted).
	KernelLaunched Kind = "kernel_launched"
	// KernelArrived: the launch latency elapsed; the instance became
	// visible to the KMU or TB scheduler.
	KernelArrived Kind = "kernel_arrived"
	// TBDispatched: the TB scheduler placed one thread block on an SMX.
	TBDispatched Kind = "tb_dispatched"
	// KernelCompleted: every thread block of the instance finished.
	KernelCompleted Kind = "kernel_completed"
	// LaunchStalled: a warp's device-side launch found its queue (KMU
	// pending pool or DTBL aggregation buffer) full and stalled; one
	// event per stall episode, not per retry cycle.
	LaunchStalled Kind = "launch_stalled"
	// QueueOverflow: a DTBL launch found the aggregation buffer full and
	// was demoted to the KMU path (DropToKMU policy).
	QueueOverflow Kind = "queue_overflow"
)

// Event is one recorded simulation event.
type Event struct {
	Cycle    uint64 `json:"cycle"`
	Kind     Kind   `json:"kind"`
	Kernel   int    `json:"kernel"`
	Name     string `json:"name"`
	Priority int    `json:"priority"`
	// Parent is the launching kernel's ID, or -1 for host kernels.
	Parent int `json:"parent"`
	// TB and SMX are set for TBDispatched events (-1 otherwise).
	TB  int `json:"tb"`
	SMX int `json:"smx"`
	// Queue names the full launch queue ("kmu" or "agg") for
	// LaunchStalled and QueueOverflow events.
	Queue string `json:"queue,omitempty"`
}

// Recorder accumulates events from one simulation run.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// DispatchHook returns a function suitable for gpu.Options.TraceDispatch
// that records TBDispatched events.
func (r *Recorder) DispatchHook() func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
	return func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
		r.events = append(r.events, Event{
			Cycle:    cycle,
			Kind:     TBDispatched,
			Kernel:   ki.ID,
			Name:     ki.Prog.Name,
			Priority: ki.Priority,
			Parent:   parentID(ki),
			TB:       tbIndex,
			SMX:      smxID,
		})
	}
}

// QueueHook returns a function suitable for gpu.Options.TraceQueue that
// records launch backpressure episodes (LaunchStalled and QueueOverflow
// events). The stalled or overflowed launch has no kernel instance yet, so
// Kernel is -1 and Name/Priority describe the child grid; Parent is the
// launching instance.
func (r *Recorder) QueueHook() func(gpu.QueueEvent) {
	return func(ev gpu.QueueEvent) {
		kind := LaunchStalled
		if ev.Kind == gpu.QueueOverflow {
			kind = QueueOverflow
		}
		r.events = append(r.events, Event{
			Cycle:    ev.Cycle,
			Kind:     kind,
			Kernel:   -1,
			Name:     ev.Child.Name,
			Priority: ev.Parent.Priority + 1,
			Parent:   ev.Parent.ID,
			TB:       -1,
			SMX:      ev.SMX,
			Queue:    ev.Queue,
		})
	}
}

// FinishRun appends the kernel lifecycle events (launch, arrival,
// completion) recorded in the simulator's kernel instances. Call it after
// Run returns; events are merged in cycle order.
func (r *Recorder) FinishRun(sim *gpu.Simulator) {
	for _, ki := range sim.Kernels() {
		base := Event{
			Kernel:   ki.ID,
			Name:     ki.Prog.Name,
			Priority: ki.Priority,
			Parent:   parentID(ki),
			TB:       -1,
			SMX:      -1,
		}
		launched := base
		launched.Cycle, launched.Kind = ki.LaunchCycle, KernelLaunched
		r.events = append(r.events, launched)

		arrived := base
		arrived.Cycle, arrived.Kind = ki.ArriveCycle, KernelArrived
		r.events = append(r.events, arrived)

		if ki.Complete() {
			completed := base
			completed.Cycle, completed.Kind = ki.CompleteCycle, KernelCompleted
			r.events = append(r.events, completed)
		}
	}
	sort.SliceStable(r.events, func(i, j int) bool { return r.events[i].Cycle < r.events[j].Cycle })
}

func parentID(ki *gpu.KernelInstance) int {
	if ki.Parent == nil {
		return -1
	}
	return ki.Parent.ID
}

// Events returns the recorded events (cycle-ordered after FinishRun).
func (r *Recorder) Events() []Event { return r.events }

// Len returns the event count.
func (r *Recorder) Len() int { return len(r.events) }

// WriteJSONL writes one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.events {
		if err := enc.Encode(&r.events[i]); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
	}
	return nil
}

// Summary aggregates the trace into per-kernel-name counts, useful for a
// quick look at what a run did.
func (r *Recorder) Summary() map[string]map[Kind]int {
	out := make(map[string]map[Kind]int)
	for _, e := range r.events {
		if out[e.Name] == nil {
			out[e.Name] = make(map[Kind]int)
		}
		out[e.Name][e.Kind]++
	}
	return out
}
