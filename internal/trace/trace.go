// Package trace records structured simulation events (kernel lifecycle and
// thread-block placement) and exports them as JSON Lines for debugging and
// visualisation. The recorder attaches to the engine through the gpu
// package's dispatch hook plus kernel-instance timestamps, so it costs
// nothing when unused.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"laperm/internal/gpu"
)

// Kind labels an event.
type Kind string

// Event kinds, in lifecycle order.
const (
	// KernelLaunched: a device-side launch instruction executed (or a
	// host kernel was submitted).
	KernelLaunched Kind = "kernel_launched"
	// KernelArrived: the launch latency elapsed; the instance became
	// visible to the KMU or TB scheduler.
	KernelArrived Kind = "kernel_arrived"
	// TBDispatched: the TB scheduler placed one thread block on an SMX.
	TBDispatched Kind = "tb_dispatched"
	// TBCompleted: a thread block retired from its SMX; Dur holds its
	// residency in cycles.
	TBCompleted Kind = "tb_completed"
	// KernelCompleted: every thread block of the instance finished.
	KernelCompleted Kind = "kernel_completed"
	// LaunchStalled: a warp's device-side launch found its queue (KMU
	// pending pool or DTBL aggregation buffer) full and stalled; one
	// event per stall episode, not per retry cycle.
	LaunchStalled Kind = "launch_stalled"
	// QueueOverflow: a DTBL launch found the aggregation buffer full and
	// was demoted to the KMU path (DropToKMU policy).
	QueueOverflow Kind = "queue_overflow"
	// SampleTaken: one timeline sample window closed; Sample carries the
	// windowed counters.
	SampleTaken Kind = "sample"
)

// kindRank orders events sharing a cycle so traces are byte-stable: a
// kernel launches before it arrives, dispatches before blocks complete,
// and completes last.
func kindRank(k Kind) int {
	switch k {
	case KernelLaunched:
		return 0
	case KernelArrived:
		return 1
	case LaunchStalled:
		return 2
	case QueueOverflow:
		return 3
	case TBDispatched:
		return 4
	case SampleTaken:
		return 5
	case TBCompleted:
		return 6
	case KernelCompleted:
		return 7
	}
	return 8
}

// Event is one recorded simulation event.
type Event struct {
	Cycle    uint64 `json:"cycle"`
	Kind     Kind   `json:"kind"`
	Kernel   int    `json:"kernel"`
	Name     string `json:"name"`
	Priority int    `json:"priority"`
	// Parent is the launching kernel's ID, or -1 for host kernels.
	Parent int `json:"parent"`
	// TB and SMX are set for TBDispatched events (-1 otherwise).
	TB  int `json:"tb"`
	SMX int `json:"smx"`
	// Queue names the full launch queue ("kmu" or "agg") for
	// LaunchStalled and QueueOverflow events.
	Queue string `json:"queue,omitempty"`
	// Dur is the thread block's SMX residency for TBCompleted events.
	Dur uint64 `json:"dur,omitempty"`
	// Sample carries the windowed counters of SampleTaken events.
	Sample *gpu.Sample `json:"sample,omitempty"`
}

// Recorder accumulates events from one simulation run.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// DispatchHook returns a function suitable for gpu.Options.TraceDispatch
// that records TBDispatched events.
func (r *Recorder) DispatchHook() func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
	return func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
		r.events = append(r.events, Event{
			Cycle:    cycle,
			Kind:     TBDispatched,
			Kernel:   ki.ID,
			Name:     ki.Prog.Name,
			Priority: ki.Priority,
			Parent:   parentID(ki),
			TB:       tbIndex,
			SMX:      smxID,
		})
	}
}

// QueueHook returns a function suitable for gpu.Options.TraceQueue that
// records launch backpressure episodes (LaunchStalled and QueueOverflow
// events). The stalled or overflowed launch has no kernel instance yet, so
// Kernel is -1 and Name/Priority describe the child grid; Parent is the
// launching instance.
func (r *Recorder) QueueHook() func(gpu.QueueEvent) {
	return func(ev gpu.QueueEvent) {
		kind := LaunchStalled
		if ev.Kind == gpu.QueueOverflow {
			kind = QueueOverflow
		}
		r.events = append(r.events, Event{
			Cycle:    ev.Cycle,
			Kind:     kind,
			Kernel:   -1,
			Name:     ev.Child.Name,
			Priority: ev.Parent.Priority + 1,
			Parent:   ev.Parent.ID,
			TB:       -1,
			SMX:      ev.SMX,
			Queue:    ev.Queue,
		})
	}
}

// BlockHook returns a function suitable for gpu.Options.TraceBlockDone
// that records TBCompleted events with the block's SMX residency as Dur.
func (r *Recorder) BlockHook() func(ki *gpu.KernelInstance, tbIndex, smxID int, dispatchCycle, cycle uint64) {
	return func(ki *gpu.KernelInstance, tbIndex, smxID int, dispatchCycle, cycle uint64) {
		r.events = append(r.events, Event{
			Cycle:    cycle,
			Kind:     TBCompleted,
			Kernel:   ki.ID,
			Name:     ki.Prog.Name,
			Priority: ki.Priority,
			Parent:   parentID(ki),
			TB:       tbIndex,
			SMX:      smxID,
			Dur:      cycle - dispatchCycle,
		})
	}
}

// SampleHook returns a function suitable for gpu.Options.TraceSample that
// records SampleTaken events carrying the windowed counters.
func (r *Recorder) SampleHook() func(s gpu.Sample) {
	return func(s gpu.Sample) {
		smp := s
		r.events = append(r.events, Event{
			Cycle:  s.Cycle,
			Kind:   SampleTaken,
			Kernel: -1,
			Parent: -1,
			TB:     -1,
			SMX:    -1,
			Sample: &smp,
		})
	}
}

// FinishRun appends the kernel lifecycle events (launch, arrival,
// completion) recorded in the simulator's kernel instances and sorts the
// trace. Call it after Run returns; events are ordered by cycle, with ties
// broken by lifecycle rank, kernel ID, and TB index, so equal runs produce
// byte-identical traces. Instances whose launch latency had not elapsed
// when the run ended (ArriveCycle beyond the final cycle) get no
// KernelArrived event: the arrival never happened.
func (r *Recorder) FinishRun(sim *gpu.Simulator) {
	end := sim.Cycle()
	for _, ki := range sim.Kernels() {
		base := Event{
			Kernel:   ki.ID,
			Name:     ki.Prog.Name,
			Priority: ki.Priority,
			Parent:   parentID(ki),
			TB:       -1,
			SMX:      -1,
		}
		launched := base
		launched.Cycle, launched.Kind = ki.LaunchCycle, KernelLaunched
		r.events = append(r.events, launched)

		if ki.ArriveCycle <= end {
			arrived := base
			arrived.Cycle, arrived.Kind = ki.ArriveCycle, KernelArrived
			r.events = append(r.events, arrived)
		}

		if ki.Complete() {
			completed := base
			completed.Cycle, completed.Kind = ki.CompleteCycle, KernelCompleted
			r.events = append(r.events, completed)
		}
	}
	sort.SliceStable(r.events, func(i, j int) bool {
		a, b := &r.events[i], &r.events[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if ra, rb := kindRank(a.Kind), kindRank(b.Kind); ra != rb {
			return ra < rb
		}
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		return a.TB < b.TB
	})
}

func parentID(ki *gpu.KernelInstance) int {
	if ki.Parent == nil {
		return -1
	}
	return ki.Parent.ID
}

// Events returns the recorded events (cycle-ordered after FinishRun).
func (r *Recorder) Events() []Event { return r.events }

// Len returns the event count.
func (r *Recorder) Len() int { return len(r.events) }

// WriteJSONL writes one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.events {
		if err := enc.Encode(&r.events[i]); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
	}
	return nil
}

// Summary aggregates the trace into per-kernel-name counts, useful for a
// quick look at what a run did.
func (r *Recorder) Summary() map[string]map[Kind]int {
	out := make(map[string]map[Kind]int)
	for _, e := range r.events {
		if out[e.Name] == nil {
			out[e.Name] = make(map[Kind]int)
		}
		out[e.Name][e.Kind]++
	}
	return out
}
