package trace

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"laperm/internal/telemetry"
)

// Flight export: a telemetry flight (the service's per-job wall-clock span
// recorder) rendered in the same Chrome trace_event JSON the simulation
// Perfetto export uses, so ui.perfetto.dev opens both. Where the simulation
// trace maps one cycle to one microsecond, a flight is real time: one
// microsecond of wall clock per trace microsecond, anchored at the flight's
// begin time.
//
// Each span track becomes its own process (sorted by name, pids from 1), so
// the service-level lifecycle ("job": queued, run, attempts, artifacts) and
// the engine-internal phases ("engine") land on separate rows. Closed spans
// are complete ("X") slices, instants are instant ("i") events, and a span
// still open at render time is closed at the latest timestamp in the
// flight, so partial traces of in-flight jobs remain loadable.

// WriteFlightPerfetto renders a flight as Chrome trace_event JSON.
func WriteFlightPerfetto(w io.Writer, f *telemetry.Flight) error {
	spans := f.Spans()
	begin := f.Begin()

	// Track names, sorted, one pid per track.
	trackPid := map[string]int{}
	names := make([]string, 0, 4)
	for i := range spans {
		if _, ok := trackPid[spans[i].Track]; !ok {
			trackPid[spans[i].Track] = 0
			names = append(names, spans[i].Track)
		}
	}
	sort.Strings(names)
	out := make([]perfettoEvent, 0, len(spans)+len(names))
	for i, n := range names {
		trackPid[n] = i + 1
		out = append(out, meta("process_name", i+1, 0, n))
	}

	// A span still open when snapshotted ends at the flight's horizon: the
	// latest end (or start) seen anywhere.
	horizon := begin
	for i := range spans {
		if spans[i].End.After(horizon) {
			horizon = spans[i].End
		}
		if spans[i].Start.After(horizon) {
			horizon = spans[i].Start
		}
	}

	ts := func(t time.Time) uint64 {
		if d := t.Sub(begin); d > 0 {
			return uint64(d / time.Microsecond)
		}
		return 0
	}
	// Sort for byte-stable output: by start, then track, then name.
	ordered := append([]telemetry.Span(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := &ordered[i], &ordered[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	for i := range ordered {
		sp := &ordered[i]
		pid := trackPid[sp.Track]
		var args map[string]any
		if len(sp.Attrs) > 0 {
			args = make(map[string]any, len(sp.Attrs))
			for k, v := range sp.Attrs {
				args[k] = v
			}
		}
		if sp.Instant {
			out = append(out, perfettoEvent{
				Name: sp.Name, Ph: "i", Cat: "flight", S: "p",
				Ts: ts(sp.Start), Pid: pid, Tid: 0, Args: args,
			})
			continue
		}
		end := sp.End
		if end.IsZero() {
			end = horizon
		}
		dur := ts(end) - ts(sp.Start)
		if dur == 0 {
			dur = 1 // zero-length slices are invisible in the UI
		}
		out = append(out, perfettoEvent{
			Name: sp.Name, Ph: "X", Cat: "flight",
			Ts: ts(sp.Start), Dur: dur, Pid: pid, Tid: 0, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(perfettoTrace{TraceEvents: out})
}
