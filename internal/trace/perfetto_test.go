package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// update regenerates the golden Perfetto snapshot:
//
//	go test ./internal/trace/ -run Perfetto -update
var update = flag.Bool("update", false, "rewrite the golden Perfetto file")

// runFullyTraced runs a small deterministic parent-child program with every
// trace hook attached plus sampling and attribution on.
func runFullyTraced(t *testing.T) *Recorder {
	t.Helper()
	cfg := config.SmallTest()
	cfg.DTBLLaunchLatency = 25
	rec := NewRecorder()
	sim := gpu.MustNew(gpu.Options{
		Config:         &cfg,
		Scheduler:      core.NewRoundRobin(),
		Model:          gpu.DTBL,
		TraceDispatch:  rec.DispatchHook(),
		TraceQueue:     rec.QueueHook(),
		TraceBlockDone: rec.BlockHook(),
		TraceSample:    rec.SampleHook(),
		SampleEvery:    64,
		Attribution:    true,
	})
	child := isa.NewKernel("child").Add(isa.NewTB(32).LoadSeq(0, 2).Compute(5).Build()).Build()
	kb := isa.NewKernel("host")
	for i := 0; i < 4; i++ {
		kb.Add(isa.NewTB(32).LoadSeq(0, 2).Compute(2).Launch(0, child).Compute(10).Build())
	}
	if err := sim.LaunchHost(kb.Build()); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	rec.FinishRun(sim)
	return rec
}

// TestPerfettoGolden snapshots the full Perfetto export byte-for-byte: the
// simulator is deterministic and JSON map keys marshal sorted, so any drift
// is a real behaviour change.
func TestPerfettoGolden(t *testing.T) {
	rec := runFullyTraced(t)
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "perfetto_tiny.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Perfetto output drifted from %s (rerun with -update if intended)", path)
	}
}

// TestPerfettoSchema validates the export against the trace_event contract:
// parseable JSON, only legal phases, required fields per phase, balanced
// async spans, and numeric counter values.
func TestPerfettoSchema(t *testing.T) {
	rec := runFullyTraced(t)
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	asyncDepth := make(map[float64]int)
	for i, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event %d missing %q: %v", i, k, e)
			}
		}
		switch ph {
		case "M": // metadata
		case "X":
			if d, ok := e["dur"].(float64); !ok || d <= 0 {
				t.Errorf("complete event %d without positive dur: %v", i, e)
			}
		case "b":
			asyncDepth[e["id"].(float64)]++
		case "e":
			asyncDepth[e["id"].(float64)]--
		case "n":
			if _, ok := e["id"]; !ok {
				t.Errorf("async instant %d without id: %v", i, e)
			}
		case "i":
			if e["s"] != "t" {
				t.Errorf("instant event %d without thread scope: %v", i, e)
			}
		case "C":
			args, ok := e["args"].(map[string]any)
			if !ok || len(args) == 0 {
				t.Fatalf("counter event %d without args: %v", i, e)
			}
			for k, v := range args {
				if _, ok := v.(float64); !ok {
					t.Errorf("counter event %d series %q is not numeric: %v", i, k, v)
				}
			}
		default:
			t.Errorf("event %d has unknown phase %q", i, ph)
		}
	}
	for id, depth := range asyncDepth {
		if depth != 0 {
			t.Errorf("async span id %v unbalanced (depth %d)", id, depth)
		}
	}
}

// TestBlockAndSampleEvents checks the new hooks' event shapes: every
// dispatch has a matching completion with a sane duration, and samples
// carry counters.
func TestBlockAndSampleEvents(t *testing.T) {
	rec := runFullyTraced(t)
	dispatched, completed, samples := 0, 0, 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case TBDispatched:
			dispatched++
		case TBCompleted:
			completed++
			if e.Dur == 0 || e.Dur > e.Cycle {
				t.Errorf("TBCompleted with implausible Dur: %+v", e)
			}
			if e.SMX < 0 || e.TB < 0 {
				t.Errorf("TBCompleted missing placement: %+v", e)
			}
		case SampleTaken:
			samples++
			if e.Sample == nil {
				t.Fatalf("SampleTaken without payload: %+v", e)
			}
			if e.Sample.Cycle != e.Cycle {
				t.Errorf("sample cycle %d != event cycle %d", e.Sample.Cycle, e.Cycle)
			}
		}
	}
	if dispatched == 0 || dispatched != completed {
		t.Errorf("dispatched %d vs completed %d, want equal and nonzero", dispatched, completed)
	}
	if samples == 0 {
		t.Error("no samples recorded with SampleEvery set")
	}
}

// TestFinishRunSkipsUnarrivedKernels: a run cut off by MaxCycles before a
// child's launch latency elapses must not fabricate a KernelArrived event
// dated after the end of the run.
func TestFinishRunSkipsUnarrivedKernels(t *testing.T) {
	cfg := config.SmallTest()
	cfg.DTBLLaunchLatency = 10000 // far beyond the cutoff
	rec := NewRecorder()
	sim := gpu.MustNew(gpu.Options{
		Config:    &cfg,
		Scheduler: core.NewRoundRobin(),
		Model:     gpu.DTBL,
		MaxCycles: 200,
	})
	child := isa.NewKernel("late-child").Add(isa.NewTB(32).Compute(2).Build()).Build()
	host := isa.NewKernel("host").
		Add(isa.NewTB(32).Compute(2).Launch(0, child).Compute(2).Build()).Build()
	if err := sim.LaunchHost(host); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("expected a MaxCycles error with an unarrivable child")
	}
	rec.FinishRun(sim)
	end := sim.Cycle()
	sawLateLaunch := false
	for _, e := range rec.Events() {
		if e.Cycle > end {
			t.Errorf("event beyond the end of the run: %+v", e)
		}
		if e.Name == "late-child" {
			switch e.Kind {
			case KernelLaunched:
				sawLateLaunch = true
			case KernelArrived:
				t.Errorf("fabricated arrival for unarrived kernel: %+v", e)
			}
		}
	}
	if !sawLateLaunch {
		t.Error("launch event for the unarrived child is missing")
	}
}

// TestDeterministicTieOrder: two identical runs must serialise to identical
// byte streams — the tie-break sort leaves no room for map or insertion
// order to leak through.
func TestDeterministicTieOrder(t *testing.T) {
	var a, b bytes.Buffer
	if err := runFullyTraced(t).WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := runFullyTraced(t).WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical runs produced different JSONL traces")
	}
}
