package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto export: the recorded trace rendered in the Chrome trace_event
// JSON format understood by ui.perfetto.dev and chrome://tracing. One
// simulated cycle maps to one microsecond of trace time. The track layout:
//
//   - process "SMXs" (pid 1): one thread per SMX. Thread blocks appear as
//     complete ("X") slices spanning dispatch to retirement; launch stalls
//     and queue overflows as instant ("i") events on the stalling SMX.
//   - process "Kernels" (pid 2): each kernel instance is an async span
//     ("b"/"e") keyed by its instance ID, opened at launch and closed at
//     completion, with an async instant ("n") marking KMU/scheduler
//     arrival.
//   - process "Counters" (pid 3): timeline samples become counter ("C")
//     tracks — IPC, cache hit rates, resident TBs, live kernels, queue
//     depths, windowed stalls, and the windowed parent-child L1 share.

const (
	pidSMX      = 1
	pidKernels  = 2
	pidCounters = 3
)

// perfettoEvent is one trace_event entry. Args is a map so json.Marshal
// emits keys sorted, keeping the output byte-stable.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type perfettoTrace struct {
	TraceEvents []perfettoEvent `json:"traceEvents"`
}

// WritePerfetto renders the recorder's events (FinishRun must have been
// called) as Chrome trace_event JSON.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	return WritePerfetto(w, r.events)
}

// WritePerfetto renders a cycle-ordered event list as Chrome trace_event
// JSON loadable in ui.perfetto.dev.
func WritePerfetto(w io.Writer, events []Event) error {
	out := metadataEvents(events)
	for i := range events {
		out = append(out, convertEvent(&events[i])...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(perfettoTrace{TraceEvents: out})
}

// metadataEvents names the processes and the per-SMX threads seen in the
// trace.
func metadataEvents(events []Event) []perfettoEvent {
	out := []perfettoEvent{
		meta("process_name", pidSMX, 0, "SMXs"),
		meta("process_name", pidKernels, 0, "Kernels"),
		meta("process_name", pidCounters, 0, "Counters"),
	}
	smxs := map[int]bool{}
	for i := range events {
		if events[i].SMX >= 0 {
			smxs[events[i].SMX] = true
		}
	}
	ids := make([]int, 0, len(smxs))
	for id := range smxs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, meta("thread_name", pidSMX, id, fmt.Sprintf("SMX %d", id)))
	}
	return out
}

func meta(kind string, pid, tid int, name string) perfettoEvent {
	return perfettoEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}}
}

func convertEvent(e *Event) []perfettoEvent {
	switch e.Kind {
	case TBCompleted:
		dur := e.Dur
		if dur == 0 {
			dur = 1 // zero-length slices are invisible in the UI
		}
		return []perfettoEvent{{
			Name: fmt.Sprintf("%s#%d tb%d", e.Name, e.Kernel, e.TB),
			Ph:   "X", Cat: "tb",
			Ts: e.Cycle - e.Dur, Dur: dur,
			Pid: pidSMX, Tid: e.SMX,
			Args: map[string]any{
				"kernel": e.Kernel, "tb": e.TB,
				"priority": e.Priority, "parent": e.Parent,
			},
		}}
	case KernelLaunched:
		return []perfettoEvent{kernelSpan(e, "b")}
	case KernelArrived:
		return []perfettoEvent{kernelSpan(e, "n")}
	case KernelCompleted:
		return []perfettoEvent{kernelSpan(e, "e")}
	case LaunchStalled, QueueOverflow:
		return []perfettoEvent{{
			Name: fmt.Sprintf("%s %s", string(e.Kind), e.Queue),
			Ph:   "i", Cat: "stall", S: "t",
			Ts: e.Cycle, Pid: pidSMX, Tid: e.SMX,
			Args: map[string]any{"child": e.Name, "parent": e.Parent},
		}}
	case SampleTaken:
		return sampleCounters(e)
	case TBDispatched:
		// Dispatch is already the left edge of the TBCompleted slice.
		return nil
	}
	return nil
}

// kernelSpan builds one leg of a kernel instance's async span; the instance
// ID correlates begin, arrival instant, and end.
func kernelSpan(e *Event, ph string) perfettoEvent {
	return perfettoEvent{
		Name: fmt.Sprintf("%s#%d", e.Name, e.Kernel),
		Ph:   ph, Cat: "kernel",
		Ts: e.Cycle, Pid: pidKernels, Tid: 0, ID: e.Kernel + 1,
		Args: map[string]any{"priority": e.Priority, "parent": e.Parent},
	}
}

// sampleCounters fans one timeline sample out into counter tracks.
func sampleCounters(e *Event) []perfettoEvent {
	s := e.Sample
	if s == nil {
		return nil
	}
	counter := func(name string, args map[string]any) perfettoEvent {
		return perfettoEvent{Name: name, Ph: "C", Ts: e.Cycle,
			Pid: pidCounters, Tid: 0, Args: args}
	}
	occ := map[string]any{}
	for i, n := range s.SMXResident {
		occ[fmt.Sprintf("smx%02d", i)] = n
	}
	out := []perfettoEvent{
		counter("IPC", map[string]any{"ipc": s.IPC}),
		counter("cache hit rate", map[string]any{"l1": s.L1, "l2": s.L2}),
		counter("resident TBs", map[string]any{"tbs": s.ResidentTBs}),
		counter("live kernels", map[string]any{"kernels": s.LiveKernels}),
		counter("launch queues", map[string]any{
			"pending": s.PendingArrivals, "kmu": s.KMUQueued,
			"kdu": s.KDUUsed, "agg": s.AggEntries,
		}),
		counter("TBs dispatched", map[string]any{"tbs": s.TBsDispatched}),
		counter("stall cycles", map[string]any{
			"mem": s.MemStalls, "launch": s.LaunchStalls,
		}),
		counter("L1 parent-child share", map[string]any{"share": s.L1ParentChild}),
	}
	if len(occ) > 0 {
		out = append(out, counter("SMX occupancy", occ))
	}
	return out
}
