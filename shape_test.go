package laperm_test

import (
	"testing"

	"laperm/internal/config"
	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
)

// shapeConfig is the reduced machine used by the shape-regression tests:
// small enough that the tiny workloads queue for several waves.
func shapeConfig() *config.GPU {
	g := config.SmallTest()
	g.NumSMX = 4
	g.TBsPerSMX = 4
	return &g
}

// TestHeadlineShape pins the paper's qualitative result on a reduced
// machine (deterministic, so exact reproducibility makes this a stable
// regression test): under DTBL, Adaptive-Bind beats the RR baseline on a
// locality-rich workload, with lower child queueing delay and no lost work.
func TestHeadlineShape(t *testing.T) {
	opt := exp.Options{Scale: kernels.ScaleTiny, Config: shapeConfig()}
	w, ok := kernels.ByName("bfs-citation")
	if !ok {
		t.Fatal("workload missing")
	}
	rr, err := exp.RunOne(w, gpu.DTBL, "rr", opt)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := exp.RunOne(w, gpu.DTBL, "adaptive-bind", opt)
	if err != nil {
		t.Fatal(err)
	}
	if ab.ThreadInsts != rr.ThreadInsts {
		t.Fatalf("different work: %d vs %d", ab.ThreadInsts, rr.ThreadInsts)
	}
	if ab.IPC < rr.IPC {
		t.Errorf("Adaptive-Bind IPC %.2f below RR %.2f", ab.IPC, rr.IPC)
	}
	if ab.AvgChildWait >= rr.AvgChildWait {
		t.Errorf("Adaptive-Bind child wait %.0f not below RR %.0f", ab.AvgChildWait, rr.AvgChildWait)
	}
}

// TestCDPBenefitsLessThanDTBL pins the models' ordering: the same scheduler
// change helps DTBL at least as much as CDP (the KDU limit and launch
// latency throttle CDP, Section IV-C).
func TestCDPBenefitsLessThanDTBL(t *testing.T) {
	opt := exp.Options{Scale: kernels.ScaleTiny, Config: shapeConfig()}
	w, _ := kernels.ByName("bfs-citation")
	speedup := func(model gpu.Model) float64 {
		rr, err := exp.RunOne(w, model, "rr", opt)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := exp.RunOne(w, model, "adaptive-bind", opt)
		if err != nil {
			t.Fatal(err)
		}
		return ab.IPC / rr.IPC
	}
	cdp, dtbl := speedup(gpu.CDP), speedup(gpu.DTBL)
	if dtbl < cdp-0.02 { // allow a little slack, but DTBL must not lose badly
		t.Errorf("DTBL speedup %.3f well below CDP %.3f", dtbl, cdp)
	}
}

// TestAdaptiveRecoversSMXBindLoss pins the Section IV-C story on the
// imbalanced gaussian join: Adaptive-Bind's IPC is at least SMX-Bind's, and
// its SMX imbalance is no worse.
func TestAdaptiveRecoversSMXBindLoss(t *testing.T) {
	opt := exp.Options{Scale: kernels.ScaleTiny, Config: shapeConfig()}
	w, _ := kernels.ByName("join-gaussian")
	sb, err := exp.RunOne(w, gpu.DTBL, "smx-bind", opt)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := exp.RunOne(w, gpu.DTBL, "adaptive-bind", opt)
	if err != nil {
		t.Fatal(err)
	}
	if ab.IPC < sb.IPC {
		t.Errorf("Adaptive-Bind IPC %.2f below SMX-Bind %.2f", ab.IPC, sb.IPC)
	}
	if ab.LoadImbalance > sb.LoadImbalance {
		t.Errorf("Adaptive-Bind imbalance %.3f above SMX-Bind %.3f",
			ab.LoadImbalance, sb.LoadImbalance)
	}
}
