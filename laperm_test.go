package laperm_test

import (
	"testing"

	"laperm"
)

// TestFacadeEndToEnd drives the whole stack through the public facade only:
// build a workload, simulate it under the baseline and under LaPerm, and
// check the locality win.
func TestFacadeEndToEnd(t *testing.T) {
	run := func(mk func(cfg *laperm.Config) laperm.Scheduler) *laperm.Result {
		cfg := laperm.KeplerK20c()
		// Shrink the machine so the tiny workload still queues.
		cfg.NumSMX = 4
		cfg.TBsPerSMX = 4
		sim := laperm.MustNewSimulator(laperm.SimOptions{
			Config:    &cfg,
			Scheduler: mk(&cfg),
			Model:     laperm.DTBL,
		})
		w, err := laperm.WorkloadByName("bfs-citation")
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.LaunchHost(w.Build(laperm.ScaleTiny)); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	rr := run(func(cfg *laperm.Config) laperm.Scheduler { return laperm.NewRoundRobin() })
	ab := run(func(cfg *laperm.Config) laperm.Scheduler {
		return laperm.NewAdaptiveBind(cfg.NumSMX, cfg.MaxPriorityLevels)
	})

	if rr.BlockCount != ab.BlockCount {
		t.Fatalf("schedulers executed different work: %d vs %d TBs", rr.BlockCount, ab.BlockCount)
	}
	if ab.AvgChildWait >= rr.AvgChildWait {
		t.Errorf("LaPerm child wait %.0f should be below RR's %.0f", ab.AvgChildWait, rr.AvgChildWait)
	}
}

func TestFacadeBuilders(t *testing.T) {
	child := laperm.NewKernel("child").Add(
		laperm.NewTB(64).LoadSeq(0, 4).Compute(8).Build(),
	).Build()
	parent := laperm.NewKernel("parent").Add(
		laperm.NewTB(64).LoadSeq(0, 4).Launch(0, child).Build(),
	).Build()
	if err := parent.Validate(); err != nil {
		t.Fatal(err)
	}
	st := laperm.AnalyzeFootprint("toy", parent)
	if st.ParentChild != 1.0 {
		t.Errorf("toy parent-child ratio = %f, want 1 (child footprint subset of parent)", st.ParentChild)
	}
}

func TestFacadeSchedulerFactory(t *testing.T) {
	cfg := laperm.KeplerK20c()
	for _, name := range []string{"rr", "tb-pri", "smx-bind", "adaptive-bind"} {
		s, err := laperm.NewScheduler(name, &cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("got %q", s.Name())
		}
	}
	if _, err := laperm.NewScheduler("nope", &cfg); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestFacadeInventories(t *testing.T) {
	if n := len(laperm.Workloads()); n != 16 {
		t.Errorf("workloads = %d, want 16", n)
	}
	if n := len(laperm.Experiments()); n != 14 {
		t.Errorf("experiments = %d, want 14", n)
	}
}
