// Command laperm-experiments regenerates the tables and figures of the
// paper's evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	laperm-experiments -exp all            # every table and figure
//	laperm-experiments -exp fig9b          # one experiment
//	laperm-experiments -exp fig7 -scale medium -workloads bfs-citation,amr
//
// With -server, the (workload × scheduler) matrix is submitted to a running
// lapermd as one /v1/sweeps request instead of simulating in-process: the
// server expands the axes, dedupes cells other requests already computed,
// and aggregates the per-cell results into cells.csv (written to -sweep-csv
// or stdout). The engine is bit-deterministic, so the bytes match a local
// run of the same axes:
//
//	laperm-experiments -server http://127.0.0.1:8077 -scale tiny \
//	    -workloads amr,bht -sweep-csv cells.csv
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"laperm/internal/client"
	"laperm/internal/exp"
	"laperm/internal/kernels"
	"laperm/internal/prof"
	"laperm/internal/serve"
	"laperm/internal/spec"
)

func main() {
	expID := flag.String("exp", "all", "experiment id ("+strings.Join(exp.IDs(), ", ")+", or all)")
	scale := flag.String("scale", "small", "workload scale (tiny, small, medium)")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default all)")
	workers := flag.Int("workers", 0, "max simulation cells run concurrently (0 = GOMAXPROCS; output is identical for every value)")
	progress := flag.Bool("progress", false, "report sweep progress (cells done/total, ETA, simulated cycles/sec) on stderr")
	dense := flag.Bool("dense", false, "step the engine one cycle at a time instead of event-horizon fast-forwarding (slower, identical results)")
	server := flag.String("server", "", "lapermd base URL; submit the matrix as a /v1/sweeps request instead of simulating in-process")
	schedulers := flag.String("schedulers", "", "comma-separated scheduler subset for -server sweeps (default all)")
	tenant := flag.String("tenant", "", "fair-share tenant for -server sweeps (default \"default\")")
	priority := flag.Int("priority", 0, "fair-share priority for -server sweeps, 1..16 (default 1)")
	sweepCSV := flag.String("sweep-csv", "", "write the -server sweep's aggregated cells.csv here (default stdout)")
	pf := prof.Register(flag.CommandLine)
	flag.Parse()

	if *server != "" {
		if err := runServerSweep(*server, *scale, *workloads, *schedulers, *tenant, *priority, *sweepCSV, *progress); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	opts := exp.Options{Workers: *workers, DenseClock: *dense}
	if *progress {
		opts.Meter = exp.NewMeter()
		opts.Progress = func(p exp.Progress) {
			line := fmt.Sprintf("cells %d/%d", p.Done, p.Total)
			if p.ETA > 0 {
				line += fmt.Sprintf(", eta %s", p.ETA.Round(time.Second))
			}
			if p.CyclesPerSec > 0 {
				line += fmt.Sprintf(", %.1fM sim cycles/s", p.CyclesPerSec/1e6)
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	switch *scale {
	case "tiny":
		opts.Scale = kernels.ScaleTiny
	case "small":
		opts.Scale = kernels.ScaleSmall
	case "medium":
		opts.Scale = kernels.ScaleMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	if *expID == "all" {
		start := time.Now()
		if err := exp.RunAll(opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(all experiments in %.1fs)\n", time.Since(start).Seconds())
		return
	}
	e, ok := exp.ByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", *expID, strings.Join(exp.IDs(), ", "))
		os.Exit(2)
	}

	for _, e := range []exp.Experiment{e} {
		start := time.Now()
		fmt.Printf("=== %s: %s", e.ID, e.Title)
		if e.Inferred {
			fmt.Print(" [inferred from the paper's text]")
		}
		fmt.Println(" ===")
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}

// axisValues quotes a string list into sweep axis values.
func axisValues(names []string) []json.RawMessage {
	vals := make([]json.RawMessage, len(names))
	for i, n := range names {
		v, _ := json.Marshal(n)
		vals[i] = v
	}
	return vals
}

// runServerSweep submits the (workload × scheduler) matrix to a lapermd as
// one sweep, streams progress, and writes the server's aggregated cells.csv.
func runServerSweep(server, scale, workloads, schedulers, tenant string, priority int, csvPath string, progress bool) error {
	wl := kernels.Names()
	if workloads != "" {
		wl = strings.Split(workloads, ",")
	}
	sch := spec.SchedulerNames()
	if schedulers != "" {
		sch = strings.Split(schedulers, ",")
	}
	sw := spec.SweepSpec{
		Tenant:   tenant,
		Priority: priority,
		Base:     spec.RunSpec{Scale: scale},
		Axes: []spec.SweepAxis{
			{Field: "workload", Values: axisValues(wl)},
			{Field: "scheduler", Values: axisValues(sch)},
		},
	}
	if err := sw.Normalized().Validate(); err != nil {
		return err
	}

	ctx := context.Background()
	c := client.New(client.Config{BaseURL: server})
	view, err := c.SubmitSweep(ctx, sw)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep %s: %d cells (%d scheduled, %d deduped, %d from cache)\n",
		view.ID, view.Cells, view.Scheduled, view.Deduped, view.FromCache)

	start := time.Now()
	done := 0
	err = c.WatchSweep(ctx, view.ID, func(ev client.SSEEvent) error {
		switch ev.Type {
		case "state":
			// Snapshot/terminal views carry the authoritative done count —
			// cells finished before the stream attached are not replayed.
			var st struct {
				Done int `json:"done"`
			}
			if json.Unmarshal(ev.Data, &st) == nil && st.Done > done {
				done = st.Done
			}
			return nil
		case "cell":
			done++
		default:
			return nil
		}
		if progress {
			fmt.Fprintf(os.Stderr, "cells %d/%d (%.1fs)\n", done, view.Cells, time.Since(start).Seconds())
		}
		return nil
	})
	if err != nil {
		return err
	}
	final, err := c.SweepStatus(ctx, view.ID)
	if err != nil {
		return err
	}
	if final.State != "done" {
		return fmt.Errorf("sweep %s failed (%s): %s", final.ID, final.ErrorKind, final.Error)
	}

	csv, err := c.SweepArtifact(ctx, final.ID, serve.SweepCellsArtifact)
	if err != nil {
		return err
	}
	if csvPath == "" {
		_, err = os.Stdout.Write(csv)
		return err
	}
	if err := os.WriteFile(csvPath, csv, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", csvPath, len(csv))
	return nil
}
