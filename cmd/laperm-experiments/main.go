// Command laperm-experiments regenerates the tables and figures of the
// paper's evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	laperm-experiments -exp all            # every table and figure
//	laperm-experiments -exp fig9b          # one experiment
//	laperm-experiments -exp fig7 -scale medium -workloads bfs-citation,amr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"laperm/internal/exp"
	"laperm/internal/kernels"
	"laperm/internal/prof"
)

func main() {
	expID := flag.String("exp", "all", "experiment id ("+strings.Join(exp.IDs(), ", ")+", or all)")
	scale := flag.String("scale", "small", "workload scale (tiny, small, medium)")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default all)")
	workers := flag.Int("workers", 0, "max simulation cells run concurrently (0 = GOMAXPROCS; output is identical for every value)")
	progress := flag.Bool("progress", false, "report sweep progress (cells done/total, ETA, simulated cycles/sec) on stderr")
	dense := flag.Bool("dense", false, "step the engine one cycle at a time instead of event-horizon fast-forwarding (slower, identical results)")
	pf := prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	opts := exp.Options{Workers: *workers, DenseClock: *dense}
	if *progress {
		opts.Meter = exp.NewMeter()
		opts.Progress = func(p exp.Progress) {
			line := fmt.Sprintf("cells %d/%d", p.Done, p.Total)
			if p.ETA > 0 {
				line += fmt.Sprintf(", eta %s", p.ETA.Round(time.Second))
			}
			if p.CyclesPerSec > 0 {
				line += fmt.Sprintf(", %.1fM sim cycles/s", p.CyclesPerSec/1e6)
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	switch *scale {
	case "tiny":
		opts.Scale = kernels.ScaleTiny
	case "small":
		opts.Scale = kernels.ScaleSmall
	case "medium":
		opts.Scale = kernels.ScaleMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	if *expID == "all" {
		start := time.Now()
		if err := exp.RunAll(opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(all experiments in %.1fs)\n", time.Since(start).Seconds())
		return
	}
	e, ok := exp.ByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", *expID, strings.Join(exp.IDs(), ", "))
		os.Exit(2)
	}

	for _, e := range []exp.Experiment{e} {
		start := time.Now()
		fmt.Printf("=== %s: %s", e.ID, e.Title)
		if e.Inferred {
			fmt.Print(" [inferred from the paper's text]")
		}
		fmt.Println(" ===")
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
