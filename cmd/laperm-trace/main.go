// Command laperm-trace runs one workload x scheduler cell with full
// observability switched on — reuse-tagged cache attribution, timeline
// sampling, and structured event tracing — and renders the run every way
// the repo knows how:
//
//	laperm-trace -workload bfs-citation -sched smx-bind \
//	    -perfetto run.json -timeline-csv timeline.csv -jsonl events.jsonl
//
// The Perfetto JSON opens directly in ui.perfetto.dev; the terminal report
// breaks classified L1/L2 hits down by installer relationship (self /
// parent-child / sibling / cross). With -compare the cell is re-run under
// every scheduler and the per-scheduler parent-child shares are tabulated
// (-reuse-csv writes the raw breakdown), the repo-native Figure 3 view.
//
// The flags assemble a spec.RunSpec — the lapermd service's request type —
// before anything runs, so the cell is described (and validated) exactly as
// a service submission would be.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/mem"
	"laperm/internal/prof"
	"laperm/internal/spec"
	"laperm/internal/trace"
)

func main() {
	workload := flag.String("workload", "bfs-citation", "workload name (see laperm-experiments -exp table2)")
	model := flag.String("model", "dtbl", "launch model ("+strings.Join(gpu.ModelNames(), ", ")+")")
	sched := flag.String("sched", "adaptive-bind", "TB scheduler ("+strings.Join(spec.SchedulerNames(), ", ")+")")
	scale := flag.String("scale", "tiny", "workload scale (tiny, small, medium)")
	sampleEvery := flag.Uint64("sample-every", 512, "timeline sample window in cycles (0 disables sampling)")
	jsonl := flag.String("jsonl", "", "write the event trace as JSON Lines to this file ('-' for stdout)")
	perfetto := flag.String("perfetto", "", "write a Chrome/Perfetto trace_event JSON to this file ('-' for stdout)")
	timelineCSV := flag.String("timeline-csv", "", "write the sampled timeline as CSV to this file ('-' for stdout)")
	reuseCSV := flag.String("reuse-csv", "", "with -compare: write the per-scheduler reuse breakdown CSV to this file ('-' for stdout)")
	compare := flag.Bool("compare", false, "run the cell under every scheduler and tabulate parent-child reuse")
	workers := flag.Int("workers", 0, "with -compare: max cells run concurrently (0 = GOMAXPROCS)")
	pf := prof.Register(flag.CommandLine)
	flag.Parse()

	sp := spec.RunSpec{
		Workload:    *workload,
		Scale:       *scale,
		Model:       *model,
		Scheduler:   *sched,
		SampleEvery: *sampleEvery,
		Attribution: true,
	}
	if err := sp.Validate(); err != nil {
		fatal(err)
	}

	stopProf, err := pf.Start()
	if err != nil {
		fatal(err)
	}
	if *compare {
		err = runCompare(sp, *workers, *reuseCSV)
	} else {
		err = runCell(sp, *jsonl, *perfetto, *timelineCSV)
	}
	if err != nil {
		stopProf()
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// runCell runs one spec with a trace recorder attached and emits every
// requested artifact.
func runCell(sp spec.RunSpec, jsonl, perfetto, timelineCSV string) error {
	rec := trace.NewRecorder()
	sim, _, err := sp.BuildWith(func(g *gpu.Options) {
		g.TraceDispatch = rec.DispatchHook()
		g.TraceQueue = rec.QueueHook()
		g.TraceBlockDone = rec.BlockHook()
		g.TraceSample = rec.SampleHook()
	})
	if err != nil {
		return err
	}
	res, err := sim.Run()
	rec.FinishRun(sim)
	if err != nil {
		return err
	}

	fmt.Println(res)
	printReuse(os.Stdout, "L1", res.L1Reuse)
	printReuse(os.Stdout, "L2", res.L2Reuse)
	fmt.Printf("%d trace events, %d timeline samples\n", rec.Len(), len(res.Timeline))

	if jsonl != "" {
		if err := emit(jsonl, rec.WriteJSONL); err != nil {
			return err
		}
	}
	if perfetto != "" {
		if err := emit(perfetto, rec.WritePerfetto); err != nil {
			return err
		}
	}
	if timelineCSV != "" {
		if err := emit(timelineCSV, func(w io.Writer) error {
			return exp.WriteTimelineCSV(res, w)
		}); err != nil {
			return err
		}
	}
	return nil
}

// runCompare sweeps the spec's workload under every scheduler and tabulates
// the reuse breakdowns.
func runCompare(sp spec.RunSpec, workers int, reuseCSV string) error {
	n := sp.Normalized()
	sc, err := spec.ParseScale(n.Scale)
	if err != nil {
		return err
	}
	m, err := spec.ParseModel(n.Model)
	if err != nil {
		return err
	}
	o := exp.Options{
		Attribution: true,
		SampleEvery: n.SampleEvery,
		Workers:     workers,
		Scale:       sc,
		Workloads:   []string{n.Workload},
	}
	rm, err := exp.RunReuse(o, m)
	if err != nil {
		return err
	}
	if err := exp.WriteReuseReport(rm, os.Stdout); err != nil {
		return err
	}
	if reuseCSV != "" {
		return emit(reuseCSV, func(w io.Writer) error {
			return exp.WriteReuseCSV(rm, w)
		})
	}
	return nil
}

func printReuse(w io.Writer, level string, r mem.ReuseStats) {
	fmt.Fprintf(w, "%s reuse: %s", level, r)
	if r.Total() > 0 {
		fmt.Fprintf(w, " (parent-child %.1f%%)", 100*r.Share(mem.ReuseParentChild))
	}
	fmt.Fprintln(w)
}

// emit writes fn's output to path, atomically for real files, streamed for
// '-' (stdout).
func emit(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	return exp.WriteFileAtomic(path, fn)
}
