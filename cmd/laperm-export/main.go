// Command laperm-export runs the full evaluation sweep and writes
// machine-readable CSVs for downstream plotting: the workload x model x
// scheduler matrix and the Figure 2 footprint analysis.
//
// Usage:
//
//	laperm-export -out results.csv -footprint footprint.csv
//	laperm-export -scale tiny -workloads bfs-citation,amr -out -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"laperm/internal/exp"
	"laperm/internal/kernels"
)

// emit writes fn's output to path. "-" streams to stdout (which is never
// closed); real files are written via a same-directory temp file renamed
// into place, so an interrupted or failed export never leaves a partial
// CSV behind.
func emit(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	if err := exp.WriteFileAtomic(path, fn); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func main() {
	out := flag.String("out", "results.csv", "matrix CSV destination ('-' for stdout, empty to skip)")
	footprint := flag.String("footprint", "", "footprint CSV destination ('-' for stdout, empty to skip)")
	scale := flag.String("scale", "small", "workload scale (tiny, small, medium)")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default all)")
	flag.Parse()

	opts := exp.Options{}
	switch *scale {
	case "tiny":
		opts.Scale = kernels.ScaleTiny
	case "small":
		opts.Scale = kernels.ScaleSmall
	case "medium":
		opts.Scale = kernels.ScaleMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	if *footprint != "" {
		err := emit(*footprint, func(w io.Writer) error {
			return exp.WriteFootprintCSV(opts, w)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *out != "" {
		m, err := exp.RunMatrix(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = emit(*out, func(w io.Writer) error {
			return exp.WriteMatrixCSV(m, w)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
