// Command laperm-export runs the full evaluation sweep and writes
// machine-readable CSVs for downstream plotting: the workload x model x
// scheduler matrix and the Figure 2 footprint analysis.
//
// Usage:
//
//	laperm-export -out results.csv -footprint footprint.csv
//	laperm-export -scale tiny -workloads bfs-citation,amr -out -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"laperm/internal/exp"
	"laperm/internal/kernels"
)

func openOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

func main() {
	out := flag.String("out", "results.csv", "matrix CSV destination ('-' for stdout, empty to skip)")
	footprint := flag.String("footprint", "", "footprint CSV destination ('-' for stdout, empty to skip)")
	scale := flag.String("scale", "small", "workload scale (tiny, small, medium)")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default all)")
	flag.Parse()

	opts := exp.Options{}
	switch *scale {
	case "tiny":
		opts.Scale = kernels.ScaleTiny
	case "small":
		opts.Scale = kernels.ScaleSmall
	case "medium":
		opts.Scale = kernels.ScaleMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	if *footprint != "" {
		w, err := openOut(*footprint)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := exp.WriteFootprintCSV(opts, w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if w != os.Stdout {
			w.Close()
			fmt.Printf("wrote %s\n", *footprint)
		}
	}

	if *out != "" {
		m, err := exp.RunMatrix(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w, err := openOut(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := exp.WriteMatrixCSV(m, w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if w != os.Stdout {
			w.Close()
			fmt.Printf("wrote %s\n", *out)
		}
	}
}
