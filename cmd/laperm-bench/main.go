// laperm-bench aggregates multi-sample `go test -bench` output into a
// BENCH_*.json report and gates it against a committed baseline.
//
// Produce an artifact:
//
//	go test -run '^$' -bench 'Matrix|Clock' -count=5 -benchtime=1x -benchmem ./internal/exp/ | tee bench.txt
//	go run ./cmd/laperm-bench -in bench.txt -out BENCH_7.json
//
// Gate a run against the checked-in baseline (exit status 1 on regression):
//
//	go run ./cmd/laperm-bench -in bench.txt -baseline BENCH_7.json
//
// Timing tolerance (-ns-tolerance) is relative on the median ns/op and
// should be generous when the gate runs on different hardware than the
// baseline; allocation tolerance (-allocs-tolerance) defaults to zero
// because allocs/op is machine-independent — any increase on a pinned
// benchmark is a real regression. -require-scaling S additionally demands
// the Workers1/Workers8 matrix speedup reach S when the run's GOMAXPROCS
// allows 8 truly parallel workers; on smaller machines the check is
// reported as skipped, mirroring the -short-skippable scaling test.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"laperm/internal/bench"
)

func main() {
	var (
		in             = flag.String("in", "-", "go test -bench output to read ('-' for stdin)")
		out            = flag.String("out", "", "write the aggregated JSON report to this path")
		baseline       = flag.String("baseline", "", "baseline JSON report to gate against")
		nsTol          = flag.Float64("ns-tolerance", 0.10, "relative median ns/op tolerance against the baseline")
		allocsTol      = flag.Float64("allocs-tolerance", 0, "relative allocs/op tolerance against the baseline")
		requireScaling = flag.Float64("require-scaling", 0, "minimum MatrixWorkers1/MatrixWorkers8 speedup (0 disables; skipped when GOMAXPROCS < 8)")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	samples, meta, err := bench.ParseGoBench(src)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark samples in input"))
	}
	rep := bench.Aggregate(samples, meta)

	if *out != "" {
		f, err := os.CreateTemp(".", "bench-*.json")
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if err := os.Rename(f.Name(), *out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d benchmarks, GOMAXPROCS %d\n", *out, len(rep.Benchmarks), rep.GOMAXPROCS)
	}

	failed := false
	if *baseline != "" {
		base, err := bench.ReadReport(*baseline)
		if err != nil {
			fatal(err)
		}
		regs, missing := bench.Compare(base, rep, bench.Tolerances{NsPerOp: *nsTol, AllocsPerOp: *allocsTol})
		for _, m := range missing {
			fmt.Printf("note: %s in baseline but not in this run\n", m)
		}
		for _, r := range regs {
			fmt.Printf("REGRESSION %s\n", r)
			failed = true
		}
		if len(regs) == 0 {
			fmt.Printf("gate ok: %d benchmarks within tolerance (ns/op +%.0f%%, allocs/op +%.0f%%)\n",
				len(base.Benchmarks)-len(missing), *nsTol*100, *allocsTol*100)
		}
	}

	if *requireScaling > 0 {
		const w1, w8 = "BenchmarkMatrixWorkers1", "BenchmarkMatrixWorkers8"
		switch s, ok := rep.Speedup(w1, w8); {
		case !ok:
			fmt.Printf("note: scaling check skipped (%s/%s not both present)\n", w1, w8)
		case rep.GOMAXPROCS < 8:
			fmt.Printf("note: scaling check skipped (GOMAXPROCS %d < 8; measured %.2fx)\n", rep.GOMAXPROCS, s)
		case s < *requireScaling:
			fmt.Printf("REGRESSION scaling: Workers1/Workers8 speedup %.2fx below the %.1fx floor\n", s, *requireScaling)
			failed = true
		default:
			fmt.Printf("scaling ok: %.2fx at 8 workers (floor %.1fx)\n", s, *requireScaling)
		}
	}

	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laperm-bench:", err)
	os.Exit(1)
}
