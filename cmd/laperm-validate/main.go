// Command laperm-validate runs the simulator's cross-scheduler sanity
// invariants on every Table II workload and reports pass/fail — a quick
// self-check for modified builds:
//
//  1. every scheduler and model executes the identical total work;
//  2. runs are deterministic (two executions, identical statistics);
//  3. SMX-Bind never places a child off its bound SMX cluster.
//
// Workloads validate independently, so -workers fans them over a bounded
// worker pool; the report is printed in workload order regardless.
//
// With -trace-dir, every failing cell is re-run with the event recorder
// attached and its JSONL trace dropped in the directory for post-mortem
// inspection (laperm-trace or ui.perfetto.dev render it).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/trace"
)

func main() {
	scale := flag.String("scale", "tiny", "workload scale (tiny, small)")
	workers := flag.Int("workers", 0, "max workloads validated concurrently (0 = GOMAXPROCS)")
	traceDir := flag.String("trace-dir", "", "dump JSONL event traces of failing cells into this directory")
	flag.Parse()

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	sc := kernels.ScaleTiny
	if *scale == "small" {
		sc = kernels.ScaleSmall
	}

	ws := kernels.All()
	reports := make([]string, len(ws))
	passed := make([]bool, len(ws))
	// Cells never return errors — invariant violations are reported in the
	// per-workload text instead — so Run cannot fail here.
	_ = exp.Pool{Workers: *workers}.Run(len(ws), func(i int) error {
		reports[i], passed[i] = validateWorkload(ws[i], sc, *traceDir)
		return nil
	})

	failures := 0
	for i, w := range ws {
		fmt.Print(reports[i])
		if passed[i] {
			fmt.Printf("ok   %-14s\n", w.Name)
		} else {
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("%d workloads failed validation\n", failures)
		os.Exit(1)
	}
	fmt.Println("all invariants hold")
}

// validateWorkload checks the three invariants on one workload, returning the
// rendered failure lines (empty on success) and whether every check passed.
// Each call owns a private configuration so calls can run concurrently.
func validateWorkload(w kernels.Workload, sc kernels.Scale, traceDir string) (string, bool) {
	var buf bytes.Buffer
	cfg := config.SmallTest()
	var wantInsts int64 = -1
	ok := true
	// fail renders one failure line, appending the post-mortem trace path
	// when -trace-dir is set.
	fail := func(model gpu.Model, sched, format string, args ...any) {
		fmt.Fprintf(&buf, "FAIL %-14s %s/%s: ", w.Name, model, sched)
		fmt.Fprintf(&buf, format, args...)
		if traceDir != "" {
			fmt.Fprintf(&buf, " %s", dumpTrace(traceDir, w, sc, &cfg, model, sched))
		}
		fmt.Fprintln(&buf)
		ok = false
	}
	for _, model := range exp.Models {
		for _, sched := range exp.SchedulerNames {
			opt := exp.Options{Scale: sc, Config: &cfg}
			a, err := exp.RunOne(w, model, sched, opt)
			if err != nil {
				fail(model, sched, "%v", err)
				continue
			}
			b, err := exp.RunOne(w, model, sched, opt)
			if err != nil || a.Cycles != b.Cycles || a.ThreadInsts != b.ThreadInsts {
				fail(model, sched, "nondeterministic")
			}
			if wantInsts == -1 {
				wantInsts = a.ThreadInsts
			} else if a.ThreadInsts != wantInsts {
				fail(model, sched, "%d thread-insts, others %d", a.ThreadInsts, wantInsts)
			}
		}
	}

	// Binding invariant under SMX-Bind.
	violations := 0
	sim, err := gpu.New(gpu.Options{
		Config:    &cfg,
		Scheduler: core.NewSMXBindClusters(cfg.NumSMX, cfg.SMXsPerCluster, cfg.MaxPriorityLevels),
		Model:     gpu.DTBL,
		TraceDispatch: func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
			if ki.Parent != nil && cfg.ClusterOf(smxID) != cfg.ClusterOf(ki.BoundSMX) {
				violations++
			}
		},
	})
	if err != nil {
		fmt.Fprintf(&buf, "FAIL %-14s smx-bind setup: %v\n", w.Name, err)
		return buf.String(), false
	}
	if err := sim.LaunchHost(w.Build(sc)); err != nil {
		fmt.Fprintf(&buf, "FAIL %-14s smx-bind launch: %v\n", w.Name, err)
		return buf.String(), false
	}
	if _, err := sim.Run(); err != nil {
		fmt.Fprintf(&buf, "FAIL %-14s smx-bind trace run: %v\n", w.Name, err)
		ok = false
	}
	if violations > 0 {
		fmt.Fprintf(&buf, "FAIL %-14s smx-bind: %d TBs off their bound cluster\n", w.Name, violations)
		ok = false
	}
	return buf.String(), ok
}

// dumpTrace re-runs one failing cell with the event recorder attached and
// writes its JSONL trace into dir, returning a parenthesised note for the
// failure line. The run's own error is irrelevant here — the trace of the
// failure is the point — and the recorder captures events up to the error.
func dumpTrace(dir string, w kernels.Workload, sc kernels.Scale, cfg *config.GPU, model gpu.Model, sched string) string {
	rec := trace.NewRecorder()
	cp := cfg.Clone()
	_, sim, _ := exp.RunCell(w, model, sched, exp.Options{Scale: sc, Config: &cp},
		func(g *gpu.Options) {
			g.TraceDispatch = rec.DispatchHook()
			g.TraceQueue = rec.QueueHook()
			g.TraceBlockDone = rec.BlockHook()
		})
	if sim != nil {
		rec.FinishRun(sim)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%s_%s.jsonl", w.Name, model, sched))
	if err := exp.WriteFileAtomic(path, rec.WriteJSONL); err != nil {
		return fmt.Sprintf("(trace dump failed: %v)", err)
	}
	return fmt.Sprintf("(trace: %s)", path)
}
