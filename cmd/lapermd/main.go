// Command lapermd serves the simulator as an HTTP/JSON service with a
// content-addressed result cache.
//
// Submit a RunSpec and poll it:
//
//	lapermd -addr :8077 -cache-dir /var/cache/lapermd &
//	curl -s -X POST localhost:8077/v1/runs -d '{"workload":"bfs-citation","scale":"tiny"}'
//	curl -s localhost:8077/v1/runs/<id>
//	curl -s localhost:8077/v1/runs/<id>/events        # SSE progress stream
//	curl -s localhost:8077/v1/artifacts/<id>/trace.perfetto.json
//	curl -s localhost:8077/metrics
//
// The run ID is the SHA-256 of the spec's canonical form: identical
// submissions coalesce while in flight and are answered from the cache once
// complete, and the engine's bit-determinism makes cached artifacts
// byte-identical to a fresh run's. SIGINT/SIGTERM drain gracefully: new runs
// get 503, queued and running jobs finish (up to -drain-timeout), then the
// listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"laperm/internal/faults"
	"laperm/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	cacheDir := flag.String("cache-dir", "lapermd-cache", "content-addressed result cache directory")
	cacheMax := flag.Int64("cache-max-bytes", 0, "cache byte budget, LRU-evicted (0 = unlimited)")
	workers := flag.Int("workers", 0, "max concurrently executing runs (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 256, "max queued-but-unstarted runs before submissions are shed with 429")
	jobDeadline := flag.Duration("job-deadline", 0, "per-run wall-clock budget (0 = unlimited)")
	maxCycles := flag.Uint64("max-cycles", 0, "per-run simulated-cycle cap (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before in-flight runs are canceled")
	retryLimit := flag.Int("retry-limit", 0, "transient-failure retries per run before it fails (0 = default 2, negative = disabled)")
	faultSpec := flag.String("faults", "", "fault-injection schedule, e.g. 'serve.cache.write=error:p=0.5:n=2' (default: $"+faults.EnvVar+")")
	faultSeed := flag.Uint64("faults-seed", 0, "deterministic seed for -faults draws (default: $"+faults.EnvSeedVar+", else 1)")
	flag.Parse()

	var reg *faults.Registry
	if *faultSpec != "" {
		seed := *faultSeed
		if seed == 0 {
			seed = 1
		}
		r, err := faults.Parse(*faultSpec, seed)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		reg = r
	} else {
		r, err := faults.FromEnv()
		if err != nil {
			log.Fatalf("%s: %v", faults.EnvVar, err)
		}
		reg = r
	}
	if reg != nil {
		log.Printf("fault injection armed: %s (seed %d)", reg.Spec(), reg.Seed())
	}

	srv, err := serve.New(serve.Config{
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheMax,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		JobDeadline:   *jobDeadline,
		MaxCycles:     *maxCycles,
		RetryLimit:    *retryLimit,
		Faults:        reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("lapermd listening on %s (cache %s)", *addr, *cacheDir)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("draining (budget %s)...", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("drain: %v (in-flight runs canceled)", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	log.Print("lapermd stopped")
}
