// Command lapermd serves the simulator as an HTTP/JSON service with a
// content-addressed result cache.
//
// Submit a RunSpec and poll it:
//
//	lapermd -addr :8077 -cache-dir /var/cache/lapermd &
//	curl -s -X POST localhost:8077/v1/runs -d '{"workload":"bfs-citation","scale":"tiny"}'
//	curl -s localhost:8077/v1/runs/<id>
//	curl -s localhost:8077/v1/runs/<id>/events        # SSE progress stream
//	curl -s localhost:8077/v1/runs/<id>/trace         # per-job Perfetto trace
//	curl -s localhost:8077/v1/artifacts/<id>/trace.perfetto.json
//	curl -s localhost:8077/metrics                    # Prometheus text
//	curl -s localhost:8077/metrics.json               # JSON view
//
// The run ID is the SHA-256 of the spec's canonical form: identical
// submissions coalesce while in flight and are answered from the cache once
// complete, and the engine's bit-determinism makes cached artifacts
// byte-identical to a fresh run's. SIGINT/SIGTERM drain gracefully: new runs
// get 503, queued and running jobs finish (up to -drain-timeout), then the
// listener shuts down.
//
// Logs are structured (log/slog): one Info line per job lifecycle
// transition, Debug access lines with -log-level debug, and -log-format
// json for machine ingestion. -debug-addr starts a separate pprof listener
// (off by default; never mounted on the service address).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"laperm/internal/faults"
	"laperm/internal/prof"
	"laperm/internal/serve"
)

// newLogger builds the process logger from the -log-format / -log-level
// flags, writing to stderr so service logs never mix with piped output.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, errors.New(`must be "text" or "json"`)
}

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	debugAddr := flag.String("debug-addr", "", "separate listen address for /debug/pprof/ (empty = disabled)")
	cacheDir := flag.String("cache-dir", "lapermd-cache", "content-addressed result cache directory")
	cacheMax := flag.Int64("cache-max-bytes", 0, "cache byte budget, LRU-evicted (0 = unlimited)")
	workers := flag.Int("workers", 0, "max concurrently executing runs (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 256, "max queued-but-unstarted runs before submissions are shed with 429")
	jobDeadline := flag.Duration("job-deadline", 0, "per-run wall-clock budget (0 = unlimited)")
	maxCycles := flag.Uint64("max-cycles", 0, "per-run simulated-cycle cap (0 = none)")
	maxSweepCells := flag.Int("max-sweep-cells", 0, "per-sweep expanded-cell cap accepted by /v1/sweeps (0 = the spec-level limit only)")
	sweepRPS := flag.Float64("sweep-rps", 0, "per-tenant sweep submissions per second before 429 (0 = unlimited)")
	sweepBurst := flag.Int("sweep-burst", 0, "per-tenant sweep submission burst on top of -sweep-rps (0 = 1)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before in-flight runs are canceled")
	retryLimit := flag.Int("retry-limit", 0, "transient-failure retries per run before it fails (0 = default 2, negative = disabled)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	faultSpec := flag.String("faults", "", "fault-injection schedule, e.g. 'serve.cache.write=error:p=0.5:n=2' (default: $"+faults.EnvVar+")")
	faultSeed := flag.Uint64("faults-seed", 0, "deterministic seed for -faults draws (default: $"+faults.EnvSeedVar+", else 1)")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		slog.Error("bad logging flags", "error", err)
		os.Exit(1)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	var reg *faults.Registry
	if *faultSpec != "" {
		seed := *faultSeed
		if seed == 0 {
			seed = 1
		}
		r, err := faults.Parse(*faultSpec, seed)
		if err != nil {
			fatal("-faults", err)
		}
		reg = r
	} else {
		r, err := faults.FromEnv()
		if err != nil {
			fatal(faults.EnvVar, err)
		}
		reg = r
	}
	if reg != nil {
		logger.Info("fault injection armed", "spec", reg.Spec(), "seed", reg.Seed())
	}

	srv, err := serve.New(serve.Config{
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheMax,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		JobDeadline:   *jobDeadline,
		MaxCycles:     *maxCycles,
		MaxSweepCells: *maxSweepCells,
		SweepRPS:      *sweepRPS,
		SweepBurst:    *sweepBurst,
		RetryLimit:    *retryLimit,
		Faults:        reg,
		Logger:        logger,
	})
	if err != nil {
		fatal("open server", err)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("lapermd listening", "addr", *addr, "cache", *cacheDir)

	var debugSrv *http.Server
	if *debugAddr != "" {
		// Profiling lives on its own listener so it can be bound to
		// localhost while the service address is public.
		debugSrv = &http.Server{Addr: *debugAddr, Handler: prof.DebugMux()}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener", "error", err)
			}
		}()
		logger.Info("pprof debug listener up", "addr", *debugAddr)
	}

	select {
	case err := <-errCh:
		fatal("listen", err)
	case <-ctx.Done():
	}

	logger.Info("draining", "budget", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain deadline exceeded, in-flight runs canceled", "error", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("shutdown", "error", err)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	logger.Info("lapermd stopped")
}
