// Command laperm-footprint runs the shared-footprint analysis of Section
// III-A (Figure 2) on one workload or all of them, without any timing
// simulation.
//
// Usage:
//
//	laperm-footprint                      # all workloads
//	laperm-footprint -workload bfs-cage15
package main

import (
	"flag"
	"fmt"
	"os"

	"laperm/internal/kernels"
	"laperm/internal/metrics"
)

func main() {
	workload := flag.String("workload", "", "workload name (default: all)")
	scale := flag.String("scale", "small", "workload scale (tiny, small, medium)")
	flag.Parse()

	var sc kernels.Scale
	switch *scale {
	case "tiny":
		sc = kernels.ScaleTiny
	case "small":
		sc = kernels.ScaleSmall
	case "medium":
		sc = kernels.ScaleMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ws := kernels.All()
	if *workload != "" {
		w, err := kernels.Lookup(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ws = []kernels.Workload{w}
	}
	for _, w := range ws {
		fmt.Println(metrics.AnalyzeFootprint(w.Name, w.Build(sc)))
	}
}
