// Command lapermsim runs benchmark workloads on the simulated GPU under a
// chosen dynamic-parallelism model and TB scheduler, printing each run's
// statistics.
//
// Usage:
//
//	lapermsim -workload bfs-citation -model dtbl -sched adaptive-bind
//	lapermsim -workload join-gaussian -model cdp -sched rr -scale medium -v
//	lapermsim -workload all -workers 8            # whole suite, in parallel
//	lapermsim -workload amr,bht,mst-journal       # a comma-separated subset
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"laperm/internal/config"
	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/trace"
)

func main() {
	workload := flag.String("workload", "bfs-citation", `workload name, comma-separated list, or "all" (`+strings.Join(kernels.Names(), ", ")+")")
	model := flag.String("model", "dtbl", "dynamic parallelism model (cdp, dtbl)")
	sched := flag.String("sched", "adaptive-bind", "TB scheduler ("+strings.Join(exp.SchedulerNames, ", ")+")")
	scale := flag.String("scale", "small", "workload scale (tiny, small, medium)")
	verbose := flag.Bool("v", false, "print per-SMX statistics")
	timeline := flag.Uint64("timeline", 0, "sample the run every N cycles and print the timeline (single workload only)")
	traceOut := flag.String("trace", "", "write a JSONL event trace to this file (single workload only)")
	workers := flag.Int("workers", 0, "max workloads simulated concurrently (0 = GOMAXPROCS; output order is fixed)")
	dense := flag.Bool("dense", false, "step the engine one cycle at a time instead of event-horizon fast-forwarding (slower, identical results)")
	flag.Parse()

	names := strings.Split(*workload, ",")
	if *workload == "all" {
		names = kernels.Names()
	}
	if len(names) > 1 && (*traceOut != "" || *timeline > 0) {
		fmt.Fprintln(os.Stderr, "-trace and -timeline require a single -workload")
		os.Exit(2)
	}
	for _, name := range names {
		if _, ok := kernels.ByName(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
			os.Exit(2)
		}
	}
	var m gpu.Model
	switch *model {
	case "cdp":
		m = gpu.CDP
	case "dtbl":
		m = gpu.DTBL
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q (cdp, dtbl)\n", *model)
		os.Exit(2)
	}
	var sc kernels.Scale
	switch *scale {
	case "tiny":
		sc = kernels.ScaleTiny
	case "small":
		sc = kernels.ScaleSmall
	case "medium":
		sc = kernels.ScaleMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	// Fan the workloads over a bounded worker pool. Outputs are buffered per
	// cell and printed in command-line order, so the report is identical for
	// every -workers value.
	outs := make([]string, len(names))
	err := exp.Pool{Workers: *workers}.Run(len(names), func(i int) error {
		var buf bytes.Buffer
		if len(names) > 1 {
			fmt.Fprintf(&buf, "=== %s ===\n", names[i])
		}
		err := runWorkload(&buf, names[i], m, *sched, sc, *verbose, *timeline, *traceOut, *dense)
		outs[i] = buf.String()
		return err
	})
	for _, out := range outs {
		fmt.Print(out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runWorkload simulates one workload and renders its statistics to w. Every
// call builds a private configuration, scheduler, and simulator, so calls are
// safe to run concurrently.
func runWorkload(w io.Writer, name string, m gpu.Model, sched string, sc kernels.Scale, verbose bool, timeline uint64, traceOut string, dense bool) error {
	wk, ok := kernels.ByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	cfg := config.KeplerK20c()
	schedImpl, err := exp.NewScheduler(sched, &cfg)
	if err != nil {
		return err
	}
	var rec *trace.Recorder
	opts := gpu.Options{
		Config:      &cfg,
		Scheduler:   schedImpl,
		Model:       m,
		SampleEvery: timeline,
		DenseClock:  dense,
	}
	if traceOut != "" {
		rec = trace.NewRecorder()
		opts.TraceDispatch = rec.DispatchHook()
		opts.TraceQueue = rec.QueueHook()
	}
	sim, err := gpu.New(opts)
	if err != nil {
		return err
	}
	if err := sim.LaunchHost(wk.Build(sc)); err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	if rec != nil {
		rec.FinishRun(sim)
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "  trace: %d events -> %s\n", rec.Len(), traceOut)
	}
	fmt.Fprintln(w, res)
	fmt.Fprintf(w, "  DRAM transactions: %d\n", res.DRAMTransactions)
	if verbose {
		for i, st := range res.SMXStats {
			fmt.Fprintf(w, "  SMX%-2d: %8d thread-insts, %7d resident cycles, %6d issue cycles, %4d blocks\n",
				i, st.ThreadInsts, st.ResidentCycles, st.IssueCycles, st.BlocksCompleted)
		}
	}
	if timeline > 0 {
		fmt.Fprintln(w, "  cycle      ipc     l1      l2      resident-TBs  live-kernels")
		for _, s := range res.Timeline {
			fmt.Fprintf(w, "  %-10d %-7.1f %5.1f%%  %5.1f%%  %-13d %d\n",
				s.Cycle, s.IPC, 100*s.L1, 100*s.L2, s.ResidentTBs, s.LiveKernels)
		}
	}
	return nil
}
