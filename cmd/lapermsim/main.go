// Command lapermsim runs one benchmark workload on the simulated GPU under
// a chosen dynamic-parallelism model and TB scheduler, printing the run's
// statistics.
//
// Usage:
//
//	lapermsim -workload bfs-citation -model dtbl -sched adaptive-bind
//	lapermsim -workload join-gaussian -model cdp -sched rr -scale medium -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"laperm/internal/config"
	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/trace"
)

func main() {
	workload := flag.String("workload", "bfs-citation", "workload name ("+strings.Join(kernels.Names(), ", ")+")")
	model := flag.String("model", "dtbl", "dynamic parallelism model (cdp, dtbl)")
	sched := flag.String("sched", "adaptive-bind", "TB scheduler ("+strings.Join(exp.SchedulerNames, ", ")+")")
	scale := flag.String("scale", "small", "workload scale (tiny, small, medium)")
	verbose := flag.Bool("v", false, "print per-SMX statistics")
	timeline := flag.Uint64("timeline", 0, "sample the run every N cycles and print the timeline")
	traceOut := flag.String("trace", "", "write a JSONL event trace to this file")
	flag.Parse()

	w, ok := kernels.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	var m gpu.Model
	switch *model {
	case "cdp":
		m = gpu.CDP
	case "dtbl":
		m = gpu.DTBL
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q (cdp, dtbl)\n", *model)
		os.Exit(2)
	}
	var sc kernels.Scale
	switch *scale {
	case "tiny":
		sc = kernels.ScaleTiny
	case "small":
		sc = kernels.ScaleSmall
	case "medium":
		sc = kernels.ScaleMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	cfg := config.KeplerK20c()
	schedImpl, err := exp.NewScheduler(*sched, &cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var rec *trace.Recorder
	opts := gpu.Options{
		Config:      &cfg,
		Scheduler:   schedImpl,
		Model:       m,
		SampleEvery: *timeline,
	}
	if *traceOut != "" {
		rec = trace.NewRecorder()
		opts.TraceDispatch = rec.DispatchHook()
		opts.TraceQueue = rec.QueueHook()
	}
	sim, err := gpu.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := sim.LaunchHost(w.Build(sc)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := sim.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rec != nil {
		rec.FinishRun(sim)
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rec.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("  trace: %d events -> %s\n", rec.Len(), *traceOut)
	}
	fmt.Println(res)
	fmt.Printf("  DRAM transactions: %d\n", res.DRAMTransactions)
	if *verbose {
		for i, st := range res.SMXStats {
			fmt.Printf("  SMX%-2d: %8d thread-insts, %7d resident cycles, %6d issue cycles, %4d blocks\n",
				i, st.ThreadInsts, st.ResidentCycles, st.IssueCycles, st.BlocksCompleted)
		}
	}
	if *timeline > 0 {
		fmt.Println("  cycle      ipc     l1      l2      resident-TBs  live-kernels")
		for _, s := range res.Samples {
			fmt.Printf("  %-10d %-7.1f %5.1f%%  %5.1f%%  %-13d %d\n",
				s.Cycle, s.IPC, 100*s.L1, 100*s.L2, s.ResidentTBs, s.LiveKernels)
		}
	}
}
