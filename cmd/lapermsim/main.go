// Command lapermsim runs benchmark workloads on the simulated GPU under a
// chosen dynamic-parallelism model and TB scheduler, printing each run's
// statistics.
//
// Usage:
//
//	lapermsim -workload bfs-citation -model dtbl -sched adaptive-bind
//	lapermsim -workload join-gaussian -model cdp -sched rr -scale medium -v
//	lapermsim -workload all -workers 8            # whole suite, in parallel
//	lapermsim -workload amr,bht,mst-journal       # a comma-separated subset
//
// The flags assemble a spec.RunSpec per workload — the same request type the
// lapermd service accepts — so a command line and a service submission
// describe runs identically; -print-spec emits the canonical JSON instead of
// simulating, ready to POST to /v1/runs.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/spec"
	"laperm/internal/trace"
)

func main() {
	workload := flag.String("workload", "bfs-citation", `workload name, comma-separated list, or "all" (`+strings.Join(kernels.Names(), ", ")+")")
	model := flag.String("model", "dtbl", "dynamic parallelism model ("+strings.Join(gpu.ModelNames(), ", ")+")")
	sched := flag.String("sched", "adaptive-bind", "TB scheduler ("+strings.Join(spec.SchedulerNames(), ", ")+")")
	scale := flag.String("scale", "small", "workload scale (tiny, small, medium)")
	verbose := flag.Bool("v", false, "print per-SMX statistics")
	timeline := flag.Uint64("timeline", 0, "sample the run every N cycles and print the timeline (single workload only)")
	traceOut := flag.String("trace", "", "write a JSONL event trace to this file (single workload only)")
	workers := flag.Int("workers", 0, "max workloads simulated concurrently (0 = GOMAXPROCS; output order is fixed)")
	dense := flag.Bool("dense", false, "step the engine one cycle at a time instead of event-horizon fast-forwarding (slower, identical results)")
	printSpec := flag.Bool("print-spec", false, "print each run's canonical RunSpec JSON and exit without simulating")
	flag.Parse()

	names := strings.Split(*workload, ",")
	if *workload == "all" {
		names = kernels.Names()
	}
	if len(names) > 1 && (*traceOut != "" || *timeline > 0) {
		fmt.Fprintln(os.Stderr, "-trace and -timeline require a single -workload")
		os.Exit(2)
	}

	// Flags become RunSpecs up front: every run the command makes is fully
	// described (and validated) before anything simulates.
	specs := make([]spec.RunSpec, len(names))
	for i, name := range names {
		specs[i] = spec.RunSpec{
			Workload:    name,
			Scale:       *scale,
			Model:       *model,
			Scheduler:   *sched,
			SampleEvery: *timeline,
			DenseClock:  *dense,
		}
		if err := specs[i].Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *printSpec {
		for _, sp := range specs {
			canon, err := sp.Canonical()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Println(string(canon))
		}
		return
	}

	// Fan the workloads over a bounded worker pool. Outputs are buffered per
	// cell and printed in command-line order, so the report is identical for
	// every -workers value.
	outs := make([]string, len(names))
	err := exp.Pool{Workers: *workers}.Run(len(names), func(i int) error {
		var buf bytes.Buffer
		if len(names) > 1 {
			fmt.Fprintf(&buf, "=== %s ===\n", names[i])
		}
		err := runWorkload(&buf, specs[i], *verbose, *traceOut)
		outs[i] = buf.String()
		return err
	})
	for _, out := range outs {
		fmt.Print(out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runWorkload simulates one spec and renders its statistics to w. Every call
// builds a private configuration, scheduler, and simulator via the spec, so
// calls are safe to run concurrently.
func runWorkload(w io.Writer, sp spec.RunSpec, verbose bool, traceOut string) error {
	var rec *trace.Recorder
	var customize func(*gpu.Options)
	if traceOut != "" {
		rec = trace.NewRecorder()
		customize = func(g *gpu.Options) {
			g.TraceDispatch = rec.DispatchHook()
			g.TraceQueue = rec.QueueHook()
		}
	}
	sim, _, err := sp.BuildWith(customize)
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	if rec != nil {
		rec.FinishRun(sim)
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "  trace: %d events -> %s\n", rec.Len(), traceOut)
	}
	fmt.Fprintln(w, res)
	fmt.Fprintf(w, "  DRAM transactions: %d\n", res.DRAMTransactions)
	if verbose {
		for i, st := range res.SMXStats {
			fmt.Fprintf(w, "  SMX%-2d: %8d thread-insts, %7d resident cycles, %6d issue cycles, %4d blocks\n",
				i, st.ThreadInsts, st.ResidentCycles, st.IssueCycles, st.BlocksCompleted)
		}
	}
	if sp.SampleEvery > 0 {
		fmt.Fprintln(w, "  cycle      ipc     l1      l2      resident-TBs  live-kernels")
		for _, s := range res.Timeline {
			fmt.Fprintf(w, "  %-10d %-7.1f %5.1f%%  %5.1f%%  %-13d %d\n",
				s.Cycle, s.IPC, 100*s.L1, 100*s.L2, s.ResidentTBs, s.LiveKernels)
		}
	}
	return nil
}
